"""A generic binding-order multiway join with leapfrog intersection.

This is the join engine behind the RapidMatch-H baseline.  A
:class:`JoinQuery` has one variable per query (bipartite) vertex, a
unary candidate list per variable, and binary atoms over variable pairs
referencing a :class:`BinaryRelation`.  Evaluation binds variables one
at a time; the candidate list of each variable is the *leapfrog
intersection* of the posting lists contributed by atoms whose other
variable is already bound — the defining move of worst-case-optimal
join processing.

Subgraph isomorphism additionally requires the assignment to be
injective; :class:`JoinQuery` supports that via ``injective_groups``
(variables within one group must take pairwise distinct values), which
a relational-only engine would not have.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..errors import TimeoutExceeded
from ..hypergraph.index import intersect_many
from .relation import BinaryRelation

#: Search-tree nodes between deadline checks.
_TIME_CHECK_INTERVAL = 4096


@dataclass(frozen=True)
class Atom:
    """One binary predicate R(first, second) over two variables."""

    first: int
    second: int
    relation: BinaryRelation


class JoinQuery:
    """A conjunctive query with optional injectivity groups."""

    def __init__(
        self,
        num_variables: int,
        candidates: Sequence[Sequence[int]],
        atoms: Sequence[Atom],
        injective_groups: "Sequence[Sequence[int]] | None" = None,
    ) -> None:
        if len(candidates) != num_variables:
            raise ValueError("one candidate list per variable is required")
        self.num_variables = num_variables
        self.candidates = [sorted(pool) for pool in candidates]
        self.atoms = list(atoms)
        self.injective_groups = [
            frozenset(group) for group in (injective_groups or [])
        ]
        self._group_of: Dict[int, int] = {}
        for index, group in enumerate(self.injective_groups):
            for variable in group:
                self._group_of[variable] = index

    def group_of(self, variable: int) -> Optional[int]:
        return self._group_of.get(variable)


class JoinExecutor:
    """Evaluate a :class:`JoinQuery` under a binding order."""

    def __init__(self, query: JoinQuery, order: "Sequence[int] | None" = None):
        self.query = query
        self.order = (
            list(order)
            if order is not None
            else plan_binding_order(query)
        )
        if sorted(self.order) != list(range(query.num_variables)):
            raise ValueError(f"invalid binding order {self.order!r}")
        # Atoms indexed by the later-bound variable, so each binding step
        # knows which posting lists constrain it.
        position = {variable: i for i, variable in enumerate(self.order)}
        self._constraints: List[List[Tuple[int, BinaryRelation, bool]]] = [
            [] for _ in range(query.num_variables)
        ]
        self._deferred: List[List[Atom]] = [[] for _ in range(query.num_variables)]
        for atom in query.atoms:
            first_pos, second_pos = position[atom.first], position[atom.second]
            if first_pos < second_pos:
                self._constraints[second_pos].append(
                    (atom.first, atom.relation, True)
                )
            else:
                self._constraints[first_pos].append(
                    (atom.second, atom.relation, False)
                )

    def count(
        self,
        time_budget: "float | None" = None,
        on_result: "Callable[[Dict[int, int]], None] | None" = None,
    ) -> int:
        """Count all satisfying assignments; optionally stream them."""
        deadline = (
            None if time_budget is None else time.monotonic() + time_budget
        )
        assignment: Dict[int, int] = {}
        used: Dict[int, Set[int]] = {
            index: set() for index in range(len(self.query.injective_groups))
        }
        state = _JoinState(deadline, time_budget)
        return self._bind(0, assignment, used, state, on_result)

    # ------------------------------------------------------------------
    def _bind(
        self,
        depth: int,
        assignment: Dict[int, int],
        used: Dict[int, Set[int]],
        state: "_JoinState",
        on_result: "Callable[[Dict[int, int]], None] | None",
    ) -> int:
        if depth == len(self.order):
            if on_result is not None:
                on_result(dict(assignment))
            return 1
        state.tick()
        variable = self.order[depth]
        pools: List[Sequence[int]] = [self.query.candidates[variable]]
        for bound_variable, relation, forward in self._constraints[depth]:
            value = assignment[bound_variable]
            postings = (
                relation.forward(value) if forward else relation.backward(value)
            )
            pools.append(postings)
        values = intersect_many(pools)
        group = self.query.group_of(variable)
        total = 0
        for value in values:
            if group is not None and value in used[group]:
                continue
            assignment[variable] = value
            if group is not None:
                used[group].add(value)
            total += self._bind(depth + 1, assignment, used, state, on_result)
            del assignment[variable]
            if group is not None:
                used[group].discard(value)
        return total


class _JoinState:
    """Deadline bookkeeping for one join evaluation."""

    def __init__(self, deadline: "float | None", budget: "float | None"):
        self.deadline = deadline
        self.budget = budget
        self.nodes = 0

    def tick(self) -> None:
        self.nodes += 1
        if self.deadline is None:
            return
        if self.nodes % _TIME_CHECK_INTERVAL == 0:
            now = time.monotonic()
            if now > self.deadline:
                assert self.budget is not None
                raise TimeoutExceeded(
                    now - (self.deadline - self.budget), self.budget
                )


def plan_binding_order(query: JoinQuery) -> List[int]:
    """Greedy binding order: start at the smallest candidate list, then
    always bind a variable connected to the bound region (smallest
    candidate list first) — keeping every step constrained."""
    adjacency: Dict[int, Set[int]] = {v: set() for v in range(query.num_variables)}
    for atom in query.atoms:
        adjacency[atom.first].add(atom.second)
        adjacency[atom.second].add(atom.first)
    remaining = set(range(query.num_variables))
    order: List[int] = []
    bound: Set[int] = set()
    while remaining:
        frontier = (
            {v for v in remaining if adjacency[v] & bound} if bound else remaining
        )
        if not frontier:
            frontier = remaining
        chosen = min(frontier, key=lambda v: (len(query.candidates[v]), v))
        order.append(chosen)
        bound.add(chosen)
        remaining.discard(chosen)
    return order
