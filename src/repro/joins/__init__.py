"""A small binding-order multiway join engine (RapidMatch-H substrate)."""

from .leapfrog import Atom, JoinExecutor, JoinQuery, plan_binding_order
from .relation import BinaryRelation

__all__ = [
    "BinaryRelation",
    "Atom",
    "JoinQuery",
    "JoinExecutor",
    "plan_binding_order",
]
