"""Setuptools entry point.

Kept alongside pyproject.toml so that editable installs work on
environments whose pip/setuptools/wheel trio predates PEP 660 (the
offline evaluation image lacks the ``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "HGMatch: a match-by-hyperedge subhypergraph matching system "
        "(ICDE 2023 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
