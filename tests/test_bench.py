"""Tests for the benchmark harness, workloads and reporting."""

from __future__ import annotations

import pytest

from repro import HGMatch
from repro.bench import (
    QueryRecord,
    average_time,
    completion_ratio,
    format_series,
    format_table,
    geometric_mean,
    group_records,
    log_bar,
    run_baseline,
    run_hgmatch,
    speedup,
    workload,
)
from repro.baselines import make_baseline
from repro.datasets import load_dataset
from repro.errors import TimeoutExceeded


class TestHarness:
    def test_run_hgmatch_records_success(self):
        data = load_dataset("HC")
        engine = HGMatch(data)
        queries = workload("HC", "q2", queries_per_setting=2)
        record = run_hgmatch(engine, queries[0], "HC", "q2", 0, timeout=10.0)
        assert record.completed
        assert record.embeddings >= 1
        assert record.elapsed >= 0.0

    def test_run_baseline_records_success(self):
        data = load_dataset("HC")
        matcher = make_baseline("CFL-H", data)
        queries = workload("HC", "q2", queries_per_setting=2)
        record = run_baseline(matcher, queries[0], "HC", "q2", 0, timeout=10.0)
        assert record.engine == "CFL-H"
        assert record.completed

    def test_timeout_recorded_not_raised(self):
        from repro.bench.harness import run_with_timeout

        def runner():
            raise TimeoutExceeded(1.0, 1.0)

        result = run_with_timeout(runner, "X", "D", "q2", 0, timeout=1.0)
        assert not result.completed
        assert result.embeddings == -1
        assert result.charged_time(1.0) == 1.0

    def test_aggregations(self):
        records = [
            QueryRecord("E", "D", "q2", 0, 0.5, 10, True),
            QueryRecord("E", "D", "q2", 1, 9.9, -1, False),
        ]
        assert average_time(records, timeout=10.0) == pytest.approx(5.25)
        assert completion_ratio(records) == 0.5
        grouped = group_records(records)
        assert list(grouped) == [("E", "D", "q2")]

    def test_empty_aggregations(self):
        assert average_time([], 10.0) == 0.0
        assert completion_ratio([]) == 0.0


class TestWorkloads:
    def test_workload_is_deterministic(self):
        first = workload("CH", "q2", queries_per_setting=3)
        second = workload("CH", "q2", queries_per_setting=3)
        assert first == second

    def test_workload_respects_setting(self):
        for query in workload("CH", "q3", queries_per_setting=3):
            assert query.num_edges == 3
            assert 10 <= query.num_vertices <= 20

    def test_workloads_differ_across_settings(self):
        q2 = workload("CP", "q2", queries_per_setting=2)
        q3 = workload("CP", "q3", queries_per_setting=2)
        assert q2[0].num_edges != q3[0].num_edges


class TestReporting:
    def test_format_table(self):
        text = format_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T"
        )
        assert text.startswith("T")
        assert "a " in text and "22" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_series(self):
        line = format_series("speedup", [1.0, 1.9, 3.8], unit="x")
        assert line.startswith("speedup:")
        assert line.endswith("x")

    def test_log_bar_monotone(self):
        assert len(log_bar(1.0)) > len(log_bar(1e-3))
        assert log_bar(0.0) == ""

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, -5.0]) == 0.0
