"""Worker discovery: the registry server and the worker-side announcer.

The registry is one-way (workers speak ANNOUNCE then HEARTBEATs; the
registry never replies), so the contract under test is entirely about
*membership*: announcing registers, heartbeating within the deadline
keeps the record, silence past ``interval × miss_budget`` evicts,
garbage evicts with a protocol-error reason, a re-announced identity
supersedes the stale record (latest wins), and eviction records feed
pollers through a monotone cursor.  The integration half proves the
real pipeline: ``spawn_local_cluster(announce=...)`` populates the
registry and ``NetShardExecutor.from_registry`` composes a pool from
it with counts bit-identical to an address-configured run.
"""

from __future__ import annotations

import random
import socket
import time

import pytest

from repro import HGMatch
from repro.errors import SchedulerError
from repro.hypergraph import ShardDescriptor
from repro.parallel import (
    Announcer,
    NetShardExecutor,
    WorkerRegistry,
    spawn_local_cluster,
    transport,
)
from repro.testing import make_random_instance

#: Fast heartbeat for tests: eviction deadline = 0.1 * 3 = 0.3s.
INTERVAL = 0.1


def _descriptor(shard_id=0, replica_id=0, num_shards=2, num_replicas=1):
    return ShardDescriptor(
        shard_id=shard_id,
        num_shards=num_shards,
        index_backend="bitset",
        num_partitions=1,
        num_rows=4,
        graph_edges=8,
        graph_vertices=6,
        replica_id=replica_id,
        num_replicas=num_replicas,
    ).as_dict()


def _announce(registry, descriptor, address=("10.0.0.1", 7000), seed=0):
    """Open a raw announcer connection; returns the socket (caller
    keeps it open — closing it evicts the record)."""
    sock = socket.create_connection(registry.address, timeout=5.0)
    transport.send_frame(
        sock,
        transport.MSG_ANNOUNCE,
        transport.encode_announce(address, descriptor, seed),
    )
    return sock


def _wait(predicate, timeout=5.0, step=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return predicate()


# ----------------------------------------------------------------------
# Registry units (raw sockets, no real workers)
# ----------------------------------------------------------------------


def test_registry_validates_knobs():
    with pytest.raises(SchedulerError, match="heartbeat_interval"):
        WorkerRegistry(heartbeat_interval=0.0)
    with pytest.raises(SchedulerError, match="miss_budget"):
        WorkerRegistry(miss_budget=0)
    registry = WorkerRegistry()
    with pytest.raises(SchedulerError, match="not started"):
        registry.address


def test_announce_registers_and_close_evicts():
    with WorkerRegistry(heartbeat_interval=INTERVAL) as registry:
        sock = _announce(registry, _descriptor(0), ("10.0.0.1", 7000))
        try:
            assert _wait(lambda: registry.is_live(0, 0))
            record = registry.record(0, 0)
            assert record.address == ("10.0.0.1", 7000)
            assert record.descriptor.shard_id == 0
            generation = registry.generation
        finally:
            sock.close()
        # Connection loss is an eviction, visible to cursor pollers.
        assert _wait(lambda: not registry.is_live(0, 0))
        cursor, evicted = registry.evictions_since(0)
        assert cursor == 1
        assert evicted[0].shard_id == 0
        assert "connection" in evicted[0].reason
        assert registry.generation > generation


def test_missed_heartbeats_evict_with_deadline_reason():
    with WorkerRegistry(
        heartbeat_interval=INTERVAL, miss_budget=2
    ) as registry:
        sock = _announce(registry, _descriptor(1))
        try:
            assert _wait(lambda: registry.is_live(1, 0))
            # Go silent: no heartbeats ever.  Eviction within a few
            # deadlines (0.2s), with the miss accounting in the reason.
            assert _wait(lambda: not registry.is_live(1, 0))
            _, evicted = registry.evictions_since(0)
            assert "heartbeat" in evicted[-1].reason
        finally:
            sock.close()


def test_heartbeats_keep_the_record_alive():
    with WorkerRegistry(
        heartbeat_interval=INTERVAL, miss_budget=2
    ) as registry:
        sock = _announce(registry, _descriptor(0))
        try:
            assert _wait(lambda: registry.is_live(0, 0))
            # Heartbeat for 5 deadlines' worth of wall clock.
            for _ in range(10):
                transport.send_frame(sock, transport.MSG_HEARTBEAT)
                time.sleep(INTERVAL / 2)
            assert registry.is_live(0, 0)
            assert registry.evictions_since(0) == (0, [])
        finally:
            sock.close()


def test_garbage_evicts_as_protocol_error():
    with WorkerRegistry(heartbeat_interval=INTERVAL) as registry:
        sock = _announce(registry, _descriptor(0))
        try:
            assert _wait(lambda: registry.is_live(0, 0))
            sock.sendall(b"\xff" * 32)  # not a frame
            assert _wait(lambda: not registry.is_live(0, 0))
            _, evicted = registry.evictions_since(0)
            assert "protocol error" in evicted[-1].reason
        finally:
            sock.close()


def test_heartbeat_before_announce_is_refused():
    with WorkerRegistry(heartbeat_interval=INTERVAL) as registry:
        sock = socket.create_connection(registry.address, timeout=5.0)
        try:
            transport.send_frame(sock, transport.MSG_HEARTBEAT)
            # The connection is dropped without ever having registered.
            assert _wait(
                lambda: registry.snapshot() == [], timeout=2.0
            )
        finally:
            sock.close()


def test_reannounce_supersedes_latest_wins():
    with WorkerRegistry(heartbeat_interval=INTERVAL) as registry:
        stale = _announce(registry, _descriptor(0), ("10.0.0.1", 7000))
        try:
            assert _wait(lambda: registry.is_live(0, 0))
            fresh = _announce(
                registry, _descriptor(0), ("10.0.0.2", 7000)
            )
            try:
                assert _wait(
                    lambda: (
                        registry.is_live(0, 0)
                        and registry.record(0, 0).address
                        == ("10.0.0.2", 7000)
                    )
                )
                # The stale connection dying must NOT evict the fresh
                # record: it was superseded, not lost.
                stale.close()
                time.sleep(INTERVAL * 2)
                assert registry.is_live(0, 0)
                assert registry.record(0, 0).address == (
                    "10.0.0.2", 7000
                )
            finally:
                fresh.close()
        finally:
            stale.close()


def test_membership_addresses_and_wait_for():
    with WorkerRegistry(heartbeat_interval=INTERVAL) as registry:
        with pytest.raises(SchedulerError, match=r"\(0, 0\)"):
            registry.addresses(2, 1)
        socks = [
            _announce(
                registry,
                _descriptor(shard_id, num_shards=2),
                ("10.0.0.1", 7000 + shard_id),
            )
            for shard_id in range(2)
        ]
        try:
            addresses = registry.wait_for(2, 1, timeout=5.0)
            assert addresses == [
                ("10.0.0.1", 7000), ("10.0.0.1", 7001),
            ]
            replica_sets = registry.membership(2)
            assert [len(rs) for rs in replica_sets] == [1, 1]
        finally:
            for sock in socks:
                sock.close()


def test_wait_for_times_out_naming_missing_slots():
    with WorkerRegistry(heartbeat_interval=INTERVAL) as registry:
        sock = _announce(registry, _descriptor(0, num_shards=2))
        try:
            assert _wait(lambda: registry.is_live(0, 0))
            with pytest.raises(
                SchedulerError, match="did not discover"
            ):
                registry.wait_for(2, 1, timeout=0.3)
        finally:
            sock.close()


# ----------------------------------------------------------------------
# Announcer units
# ----------------------------------------------------------------------


def test_announcer_registers_and_heartbeats():
    descriptor = _descriptor(1, num_shards=2)
    with WorkerRegistry(
        heartbeat_interval=INTERVAL, miss_budget=2
    ) as registry:
        announcer = Announcer(
            registry.address,
            lambda: (("10.0.0.9", 7100), descriptor, 0),
            interval=INTERVAL,
            rng=random.Random(5),
        )
        announcer.start()
        try:
            assert announcer.announced.wait(timeout=5.0)
            assert _wait(lambda: registry.is_live(1, 0))
            # Outlive several eviction deadlines: heartbeats flow.
            time.sleep(INTERVAL * 6)
            assert registry.is_live(1, 0)
        finally:
            announcer.stop()
        assert _wait(lambda: not registry.is_live(1, 0))


def test_announcer_reconnects_after_eviction():
    """An announcer whose connection the registry drops (garbage evicts
    it) re-announces on its own — the record comes back."""
    descriptor = _descriptor(0)
    with WorkerRegistry(
        heartbeat_interval=INTERVAL, miss_budget=2
    ) as registry:
        announcer = Announcer(
            registry.address,
            lambda: (("10.0.0.9", 7100), descriptor, 0),
            interval=INTERVAL,
            rng=random.Random(5),
        )
        announcer.start()
        try:
            assert announcer.announced.wait(timeout=5.0)
            assert _wait(lambda: registry.is_live(0, 0))
            # Sever from the registry side: drop every connection by
            # restarting nothing — instead poison the record by closing
            # the announcer's socket out from under it via a stale
            # supersede (a second announce for the same identity).
            stale = _announce(
                registry, descriptor, ("10.0.0.9", 7100)
            )
            stale.close()
            # The raw announce supersedes the announcer's connection
            # and then dies — the record is evicted ...
            assert _wait(lambda: bool(registry.evictions), timeout=10.0)
            # ... and the announcer's reconnect loop must notice its
            # superseded session and re-register on its own.
            assert _wait(
                lambda: registry.is_live(0, 0), timeout=10.0
            )
        finally:
            announcer.stop()


# ----------------------------------------------------------------------
# Integration: real workers announcing, a pool composed by discovery
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def instance():
    rng = random.Random(987)
    while True:
        candidate = make_random_instance(rng)
        if candidate is not None:
            return candidate


def test_cluster_announces_and_from_registry_composes(instance):
    data, query = instance
    engine = HGMatch(data, index_backend="bitset")
    with WorkerRegistry(heartbeat_interval=INTERVAL) as registry:
        cluster = spawn_local_cluster(
            data, 2, index_backend="bitset",
            announce=registry.address, heartbeat_interval=INTERVAL,
        )
        executor = NetShardExecutor.from_registry(
            registry, 2, index_backend="bitset", wait_timeout=15.0,
        )
        try:
            assert executor.registry is registry
            assert (
                executor.run(engine, query).embeddings
                == engine.count(query)
            )
            # The records carry real descriptors of the real workers.
            for record in registry.snapshot():
                assert record.descriptor.num_shards == 2
                assert record.address in cluster.addresses
        finally:
            executor.close()
            cluster.close()
            engine.close()


def test_killed_worker_is_evicted(instance):
    data, _query = instance
    with WorkerRegistry(
        heartbeat_interval=INTERVAL, miss_budget=2
    ) as registry:
        cluster = spawn_local_cluster(
            data, 2, index_backend="bitset",
            announce=registry.address, heartbeat_interval=INTERVAL,
        )
        try:
            registry.wait_for(2, 1, timeout=15.0)
            cluster.kill_member(1)
            assert _wait(lambda: not registry.is_live(1, 0))
            _, evicted = registry.evictions_since(0)
            assert any(record.shard_id == 1 for record in evicted)
        finally:
            cluster.close()
