"""Unit tests for MatchCounters and the error hierarchy."""

from __future__ import annotations

import pytest

from repro import (
    HGMatch,
    HypergraphError,
    MatchCounters,
    ParseError,
    QueryError,
    ReproError,
    SchedulerError,
    TimeoutExceeded,
)


class TestCounters:
    def test_merge(self):
        first = MatchCounters(candidates=3, filtered=2, embeddings=1, tasks=4)
        second = MatchCounters(candidates=5, filtered=4, embeddings=2, tasks=6)
        second.peak_retained = 9
        first.merge(second)
        assert first.candidates == 8
        assert first.filtered == 6
        assert first.embeddings == 3
        assert first.tasks == 10
        assert first.peak_retained == 9

    def test_merge_final_counters(self):
        first = MatchCounters(final_candidates=2, final_filtered=1)
        second = MatchCounters(final_candidates=3, final_filtered=2)
        first.merge(second)
        assert first.final_candidates == 5
        assert first.final_filtered == 3

    def test_note_retained_tracks_peak(self):
        counters = MatchCounters()
        counters.note_retained(3)
        counters.note_retained(-1)
        counters.note_retained(4)
        assert counters.peak_retained == 6

    def test_false_positive_rate(self):
        counters = MatchCounters(filtered=10, embeddings=9)
        assert counters.false_positive_rate() == pytest.approx(0.1)
        assert MatchCounters().false_positive_rate() == 0.0

    def test_final_step_precision(self):
        counters = MatchCounters(final_filtered=100, embeddings=97)
        assert counters.final_step_precision() == pytest.approx(0.97)
        assert MatchCounters().final_step_precision() == 1.0

    def test_as_row_keys(self):
        row = MatchCounters().as_row()
        assert {"candidates", "filtered", "embeddings", "final_candidates",
                "final_filtered", "tasks", "work_units", "work_model",
                "peak_retained"} <= set(row)

    def test_work_model_mixing(self):
        """Combining counters charged under different cost models must
        surface as 'mixed' — raw sums across models are meaningless
        (both via merge() and via reuse through note_work_model)."""
        first = MatchCounters(work_units=5, work_model="postings")
        second = MatchCounters(work_units=7, work_model="mask-ops")
        first.merge(second)
        assert first.work_model == "mixed"

        reused = MatchCounters()
        reused.note_work_model("postings")
        assert reused.work_model == "postings"
        reused.note_work_model("postings")
        assert reused.work_model == "postings"
        reused.note_work_model("mask-ops")
        assert reused.work_model == "mixed"
        reused.note_work_model("")
        assert reused.work_model == "mixed"

    def test_work_model_stamped_by_engines(self, fig1_data, fig1_query):
        """One counter set reused across engines with different backends
        ends up 'mixed', not silently relabelled."""
        counters = MatchCounters()
        HGMatch(fig1_data, index_backend="merge").count(
            fig1_query, counters=counters
        )
        assert counters.work_model == "postings"
        HGMatch(fig1_data, index_backend="bitset").count(
            fig1_query, counters=counters
        )
        assert counters.work_model == "mixed"

    def test_final_counters_populated_by_engine(self, fig1_data, fig1_query):
        counters = MatchCounters()
        HGMatch(fig1_data).count(fig1_query, counters=counters)
        assert counters.final_candidates >= counters.embeddings == 2
        assert counters.final_filtered >= counters.embeddings
        assert counters.final_candidates <= counters.candidates


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_class",
        [HypergraphError, QueryError, ParseError, SchedulerError],
    )
    def test_all_derive_from_repro_error(self, error_class):
        assert issubclass(error_class, ReproError)

    def test_timeout_carries_context(self):
        error = TimeoutExceeded(2.5, 2.0)
        assert isinstance(error, ReproError)
        assert error.elapsed == 2.5
        assert error.budget == 2.0
        assert "2.5" in str(error) or "2.500" in str(error)
