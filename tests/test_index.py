"""Unit and property tests for the inverted index and sorted-set algebra."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.hypergraph import Hypergraph
from repro.hypergraph.index import (
    InvertedHyperedgeIndex,
    intersect_many,
    intersect_sorted,
    union_many,
    union_sorted,
)

sorted_lists = st.lists(st.integers(0, 60), max_size=25).map(
    lambda xs: tuple(sorted(set(xs)))
)


class TestInvertedIndex:
    def test_build_postings(self, fig1_data):
        index = InvertedHyperedgeIndex.build(fig1_data, [4, 5])
        assert index.postings(4) == (4, 5)
        assert index.postings(0) == (4,)
        assert index.postings(99) == ()

    def test_num_entries_equals_sum_of_arities(self, fig1_data):
        index = InvertedHyperedgeIndex.build(fig1_data, range(fig1_data.num_edges))
        assert index.num_entries == sum(len(e) for e in fig1_data.edges)

    def test_contains_and_len(self, fig1_data):
        index = InvertedHyperedgeIndex.build(fig1_data, [0])
        assert 2 in index
        assert 0 not in index
        assert len(index) == 2

    def test_vertices_iterates_partition_vertices(self, fig1_data):
        index = InvertedHyperedgeIndex.build(fig1_data, [0, 1])
        assert set(index.vertices()) == {2, 4, 6}


class TestSortedSetAlgebra:
    def test_intersect_example(self):
        assert intersect_sorted((1, 3, 5, 7), (3, 4, 5)) == (3, 5)

    def test_intersect_empty(self):
        assert intersect_sorted((), (1, 2)) == ()

    def test_union_example(self):
        assert union_sorted((1, 3), (2, 3, 4)) == (1, 2, 3, 4)

    def test_union_with_empty(self):
        assert union_sorted((), (5,)) == (5,)

    def test_intersect_many_orders_shortest_first(self):
        result = intersect_many([(1, 2, 3, 4, 5), (2, 4), (2, 3, 4)])
        assert result == (2, 4)

    def test_intersect_many_requires_input(self):
        with pytest.raises(ValueError):
            intersect_many([])

    def test_union_many_empty_input(self):
        assert union_many([]) == ()


@given(sorted_lists, sorted_lists)
def test_intersect_matches_set_semantics(first, second):
    assert set(intersect_sorted(first, second)) == set(first) & set(second)


@given(sorted_lists, sorted_lists)
def test_union_matches_set_semantics(first, second):
    assert set(union_sorted(first, second)) == set(first) | set(second)


@given(sorted_lists, sorted_lists)
def test_results_stay_sorted_and_unique(first, second):
    for result in (intersect_sorted(first, second), union_sorted(first, second)):
        assert list(result) == sorted(set(result))


@given(st.lists(sorted_lists, min_size=1, max_size=5))
def test_intersect_many_matches_set_semantics(lists):
    expected = set(lists[0])
    for other in lists[1:]:
        expected &= set(other)
    assert set(intersect_many(lists)) == expected


@given(st.lists(sorted_lists, max_size=5))
def test_union_many_matches_set_semantics(lists):
    expected = set()
    for other in lists:
        expected |= set(other)
    assert set(union_many(lists)) == expected
