"""Property-based invariants of the matching engine and storage layer.

These go beyond input/output equivalence: they assert structural
properties that must hold on *every* instance — duplicate-free
enumeration, isomorphism invariance under vertex renaming, monotonicity
under data growth, and the disjoint-cover property of signature
partitioning.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import HGMatch, Hypergraph, PartitionedStore
from repro.hypergraph.generators import generate_hypergraph, generate_planted_hypergraph

from repro.testing import make_random_instance

relaxed = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@relaxed
@given(seed=st.integers(0, 10_000))
def test_enumeration_is_duplicate_free(seed):
    """match() never yields the same hyperedge tuple twice."""
    instance = make_random_instance(random.Random(seed), max_vertices=12)
    if instance is None:
        return
    data, query = instance
    found = [e.canonical() for e in HGMatch(data).match(query)]
    assert len(found) == len(set(found))


@relaxed
@given(seed=st.integers(0, 10_000))
def test_count_invariant_under_vertex_renaming(seed):
    """Relabelling data vertex ids by a permutation preserves counts."""
    rng = random.Random(seed)
    instance = make_random_instance(rng, max_vertices=12)
    if instance is None:
        return
    data, query = instance
    permutation = list(range(data.num_vertices))
    rng.shuffle(permutation)
    renamed = Hypergraph(
        [data.label(old) for old in sorted(
            range(data.num_vertices), key=lambda v: permutation[v]
        )],
        [[permutation[v] for v in edge] for edge in data.edges],
    )
    assert HGMatch(renamed).count(query) == HGMatch(data).count(query)


@relaxed
@given(seed=st.integers(0, 10_000))
def test_count_monotone_under_data_growth(seed):
    """Adding hyperedges to the data never removes embeddings."""
    rng = random.Random(seed)
    instance = make_random_instance(rng, max_vertices=12)
    if instance is None:
        return
    data, query = instance
    base = HGMatch(data).count(query)
    extra_edges = [sorted(e) for e in data.edges]
    for _ in range(2):
        size = rng.randint(2, min(3, data.num_vertices))
        extra_edges.append(rng.sample(range(data.num_vertices), size))
    grown = Hypergraph(list(data.labels), extra_edges)
    assert HGMatch(grown).count(query) >= base


@relaxed
@given(seed=st.integers(0, 10_000))
def test_partitions_disjointly_cover_all_edges(seed):
    rng = random.Random(seed)
    data = generate_hypergraph(
        rng.randint(5, 20), rng.randint(1, 25), rng.randint(1, 4), 2.5, 5, rng
    )
    store = PartitionedStore(data)
    seen = []
    for signature, partition in store.partitions.items():
        for edge_id in partition.edge_ids:
            assert data.edge_signature(edge_id) == signature
            seen.append(edge_id)
    assert sorted(seen) == list(range(data.num_edges))


@relaxed
@given(seed=st.integers(0, 10_000), copies=st.integers(1, 4))
def test_planted_copies_are_a_lower_bound(seed, copies):
    rng = random.Random(seed)
    base = generate_hypergraph(12, 8, 2, 2.5, 4, rng)
    pattern = Hypergraph(["A", "B", "A"], [{0, 1}, {1, 2}])
    planted = generate_planted_hypergraph(base, pattern, copies, rng)
    assert HGMatch(planted).count(pattern) >= copies


@relaxed
@given(seed=st.integers(0, 10_000))
def test_vertex_count_at_least_hyperedge_count(seed):
    """Every hyperedge-level embedding admits ≥ 1 vertex mapping, so the
    vertex-level count dominates the hyperedge-level count."""
    instance = make_random_instance(random.Random(seed), max_vertices=12)
    if instance is None:
        return
    data, query = instance
    engine = HGMatch(data)
    hyperedge_count = engine.count(query)
    vertex_count = engine.count_vertex_embeddings(query)
    assert vertex_count >= hyperedge_count


@relaxed
@given(seed=st.integers(0, 10_000))
def test_query_always_matches_itself(seed):
    """Any connected hypergraph has at least one embedding in itself
    (the identity)."""
    rng = random.Random(seed)
    instance = make_random_instance(rng, max_vertices=10)
    if instance is None:
        return
    _, query = instance
    assert HGMatch(query).count(query) >= 1
