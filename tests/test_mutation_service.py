"""MatchService under mutation: cache invalidation, standing queries,
and the daemon's ``mutate`` / ``standing`` wire ops.

The service-level contract this file pins:

* a committed mutation bumps the graph fingerprint, so every cached
  result keyed by the old fingerprint becomes unreachable — never
  served, not even straight after the commit;
* standing queries receive *exact* deltas — ``removed`` is the old
  matches using a deleted edge, ``added`` the matches using an
  inserted one — and the maintained match set always equals a full
  re-enumeration on a fresh engine;
* a commit that cannot touch the query's subgraph still emits a delta
  (the version bump), with both sides empty;
* the mutation barrier refuses concurrent work with the *typed*
  errors: submissions see ServiceBusy, a second barrier SchedulerError;
* the daemon speaks the same truths over line-JSON TCP.
"""

import asyncio
import io
import json
import random
import socket
import threading

import pytest

from repro import HGMatch
from repro.errors import ReproError, SchedulerError, ServiceBusy
from repro.hypergraph import MutationBatch
from repro.hypergraph.io import dump_native, parse_native
from repro.service import (
    MatchClient,
    MatchDaemon,
    MatchService,
    graph_fingerprint,
)
from repro.service.standing import enumerate_added
from repro.testing import make_mutable_instance


def _wire_form(graph):
    """Round-trip through the native text format so in-process graphs
    and daemon-wire queries agree on (stringified) labels."""
    buffer = io.StringIO()
    dump_native(graph, buffer)
    return parse_native(io.StringIO(buffer.getvalue()))


@pytest.fixture()
def instance():
    """A fresh (data, query) per test — mutations consume the graph."""
    rng = random.Random(4242)
    prepared = None
    while prepared is None:
        prepared = make_mutable_instance(rng)
    data, query, _ = prepared
    return _wire_form(data), _wire_form(query)


def full_matches(engine, query):
    """The oracle: a complete enumeration as canonical tuples."""
    return {embedding.canonical() for embedding in engine.match(query)}


def rebuild_count(engine, query, backend):
    """Count on a fresh engine over the mutated graph's dense snapshot."""
    oracle = HGMatch(engine.data.to_hypergraph(), index_backend=backend)
    try:
        return oracle.count(query)
    finally:
        oracle.close()


def delete_a_matched_edge(handle):
    """A batch deleting one data edge that some current match uses."""
    match = min(handle.matches)
    return min(match), MutationBatch(deletes=[min(match)])


# ----------------------------------------------------------------------
# Cache invalidation
# ----------------------------------------------------------------------


def test_mutation_bumps_fingerprint_and_unreaches_stale_cache(instance):
    data, query = instance
    engine = HGMatch(data, index_backend="merge")
    service = MatchService(engine, shards=2)
    try:
        before = service.match(query)
        assert service.submit(query).cached  # sanity: it IS cached
        fp_before = graph_fingerprint(engine.data)

        # Mutate through the ENGINE: it must route via the service's
        # barrier, not around it.
        victim = sorted(
            edge for match in full_matches(engine, query) for edge in match
        )[0]
        result = engine.apply_mutations(MutationBatch(deletes=[victim]))
        assert result.version == 1

        assert graph_fingerprint(engine.data) != fp_before
        after = service.submit(query)
        assert not after.cached, "stale result served across a mutation"
        expected = rebuild_count(engine, query, "merge")
        assert after.result().embeddings == expected
        assert expected < before.embeddings  # the delete really bit
        # The post-mutation result is cacheable under the new key.
        assert service.submit(query).cached
    finally:
        service.close()
        engine.close()


# ----------------------------------------------------------------------
# Standing queries
# ----------------------------------------------------------------------


def test_standing_delta_is_exact_for_deletes_and_inserts(instance):
    data, query = instance
    engine = HGMatch(data, index_backend="merge")
    service = MatchService(engine, shards=2)
    try:
        handle = service.register_standing(query)
        assert handle.matches == full_matches(engine, query)
        assert service.standing_queries == 1

        # Delete an edge used by a match; re-insert its vertex set in
        # the same batch (fresh id, so old matches die and new ones
        # appear).
        victim, _ = delete_a_matched_edge(handle)
        victim_vertices = tuple(sorted(engine.data.edge(victim)))
        batch = MutationBatch(deletes=[victim], inserts=[victim_vertices])
        old_matches = set(handle.matches)
        result = service.apply_mutations(batch)

        delta = handle.poll()
        assert delta is not None and delta.version == result.version
        # removed: exactly the old matches using the deleted edge.
        assert set(delta.removed) == {
            match for match in old_matches if victim in match
        }
        # added: exactly the fresh enumeration from the inserted edges.
        inserted = {mutation.edge_id for mutation in result.inserted}
        assert set(delta.added) == enumerate_added(engine, query, inserted)
        # The maintained set equals a from-scratch enumeration.
        assert handle.matches == full_matches(engine, query)
        assert handle.version == result.version
        assert handle.poll() is None  # exactly one delta per commit
    finally:
        service.close()
        engine.close()


def test_untouched_subgraph_emits_empty_delta(instance):
    data, query = instance
    engine = HGMatch(data, index_backend="merge")
    service = MatchService(engine, shards=2)
    try:
        handle = service.register_standing(query)
        seeded = set(handle.matches)
        base = engine.data.num_vertices
        # Two vertices with a label no query vertex wears, joined by a
        # new edge: no embedding can gain or lose anything.
        batch = MutationBatch(
            add_vertices=["__fresh__", "__fresh__"],
            inserts=[(base, base + 1)],
        )
        result = service.apply_mutations(batch)
        delta = handle.poll()
        assert delta is not None, "every commit must emit a delta"
        assert not delta, "untouched subgraph produced a non-empty delta"
        assert delta.version == result.version
        assert handle.matches == seeded
    finally:
        service.close()
        engine.close()


def test_standing_callback_fires_and_submit_is_busy_mid_commit(instance):
    data, query = instance
    engine = HGMatch(data, index_backend="merge")
    service = MatchService(engine, shards=2)
    observed = []

    def callback(delta):
        # Runs inside the commit: the barrier is up, so a submission
        # from here must be refused as BUSY, not deadlock or compute.
        with pytest.raises(ServiceBusy):
            service.submit(query)
        with pytest.raises(SchedulerError, match="already being committed"):
            service.apply_mutations(MutationBatch())
        observed.append(delta)

    try:
        handle = service.register_standing(query, callback=callback)
        _, batch = delete_a_matched_edge(handle)
        result = service.apply_mutations(batch)
        assert len(observed) == 1
        assert observed[0].version == result.version
        assert observed[0] == handle.poll()
    finally:
        service.close()
        engine.close()


def test_unregister_and_drain_close_standing_streams(instance):
    data, query = instance
    engine = HGMatch(data, index_backend="merge")
    service = MatchService(engine, shards=1)
    try:
        first = service.register_standing(query)
        second = service.register_standing(query)
        assert service.standing_queries == 2
        service.unregister_standing(first)
        assert first.closed and not second.closed
        assert service.standing_queries == 1
        service.unregister_standing(first)  # idempotent
        service.drain()
        assert second.closed
        assert service.standing_queries == 0
        with pytest.raises(SchedulerError, match="closed"):
            service.register_standing(query)
        with pytest.raises(SchedulerError, match="closed"):
            service.apply_mutations(MutationBatch(deletes=[0]))
    finally:
        service.close()
        engine.close()


def test_events_iterator_drains_then_ends_after_close(instance):
    data, query = instance
    engine = HGMatch(data, index_backend="merge")
    service = MatchService(engine, shards=1)
    try:
        handle = service.register_standing(query)
        _, batch = delete_a_matched_edge(handle)
        service.apply_mutations(batch)
        service.unregister_standing(handle)
        deltas = list(handle.events(poll_interval=0.01))
        assert len(deltas) == 1 and deltas[0].removed
    finally:
        service.close()
        engine.close()


# ----------------------------------------------------------------------
# The daemon wire ops
# ----------------------------------------------------------------------


def _start_daemon(service):
    daemon = MatchDaemon(service, port=0)
    ready = threading.Event()

    def runner():
        async def _main():
            await daemon.start()
            ready.set()
            await daemon.serve()

        asyncio.run(_main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(30.0), "daemon never came up"
    return daemon, daemon.address, thread


def _stop_daemon(daemon, thread):
    daemon.request_stop()
    thread.join(timeout=60.0)
    assert not thread.is_alive()


def test_daemon_mutate_and_standing_stream(instance):
    data, query = instance
    engine = HGMatch(data, index_backend="merge")
    service = MatchService(engine, shards=2)
    daemon, (host, port), thread = _start_daemon(service)
    try:
        client = MatchClient(host, port, timeout=30.0)
        before = client.query(query)

        with client.standing(query) as subscription:
            assert subscription.matches == before.embeddings
            assert service.standing_queries == 1

            victim = min(min(m) for m in full_matches(engine, query))
            outcome = client.mutate(MutationBatch(deletes=[victim]))
            assert outcome.version == 1
            assert outcome.deleted == 1 and outcome.inserted == 0
            assert outcome.edges == engine.data.num_edges

            delta = subscription.poll(timeout=15.0)
            assert delta is not None
            assert delta["version"] == outcome.version
            assert delta["removed"], "the deleted edge killed matches"
            assert subscription.version == outcome.version

            after = client.query(query)
            assert not after.cached
            assert after.embeddings == rebuild_count(engine, query, "merge")

        # Dropping the subscription unregisters it server-side.
        deadline = 100
        while service.standing_queries and deadline:
            deadline -= 1
            threading.Event().wait(0.05)
        assert service.standing_queries == 0
    finally:
        _stop_daemon(daemon, thread)
        engine.close()


def test_daemon_rejects_bad_mutations_and_unknown_ops(instance):
    data, query = instance
    engine = HGMatch(data, index_backend="merge")
    service = MatchService(engine, shards=1)
    daemon, (host, port), thread = _start_daemon(service)
    try:
        client = MatchClient(host, port, timeout=30.0)
        # A batch deleting a non-existent edge is a typed refusal, and
        # the graph must stay pristine (atomicity through the wire).
        with pytest.raises(ReproError, match="not a live edge"):
            client.mutate(MutationBatch(deletes=[10 ** 6]))
        assert getattr(engine.data, "version", 0) == 0

        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(
                (json.dumps({"op": "frobnicate"}) + "\n").encode("utf-8")
            )
            reply = json.loads(sock.makefile("r").readline())
        assert reply["ok"] is False
        assert "frobnicate" in reply["error"]

        # The daemon survived both refusals.
        assert client.query(query).embeddings >= 1
    finally:
        _stop_daemon(daemon, thread)
        engine.close()


# ----------------------------------------------------------------------
# Durability: the journal seam and restart recovery
# ----------------------------------------------------------------------


def test_service_journals_commits_inside_the_barrier(instance, tmp_path):
    from repro.hypergraph.journal import MutationJournal, read_journal

    data, query = instance
    wal = str(tmp_path / "wal")
    engine = HGMatch(data, index_backend="merge")
    service = MatchService(engine, shards=1, journal=wal)
    try:
        assert service.journal is not None and service.journal.attached
        handle = service.register_standing(query)
        # Registration is persisted immediately, not only at drain.
        assert service.journal.load_standing(), "standing not persisted"
        _, batch = delete_a_matched_edge(handle)
        result = service.apply_mutations(batch)
        records, _valid = read_journal(service.journal.journal_path)
        assert [(v, b) for _o, v, b in records] == [(result.version, batch)]
    finally:
        service.close()
        engine.close()
    # drain (via close) flushed and closed the journal; the directory
    # alone reconstructs the committed graph.
    recovered = MutationJournal(wal).recover()
    assert recovered is not None
    assert recovered.version == result.version


def test_daemon_restart_recovers_graph_and_resumes_standing(
    instance, tmp_path
):
    """The SIGTERM-drain / restart contract: stopping the daemon
    flushes the journal and persists the standing registrations; a
    daemon restarted on the same directory serves bit-identical counts
    and resumes the standing streams from the recovered version."""
    from repro.hypergraph.journal import MutationJournal

    data, query = instance
    wal = str(tmp_path / "wal")
    engine = HGMatch(data, index_backend="merge")
    service = MatchService(engine, shards=2, journal=wal)
    daemon, (host, port), thread = _start_daemon(service)
    try:
        client = MatchClient(host, port, timeout=30.0)
        handle = service.register_standing(query)
        victim = min(min(m) for m in handle.matches)
        outcome = client.mutate(MutationBatch(deletes=[victim]))
        assert outcome.version == 1
        expected = rebuild_count(engine, query, "merge")
        fingerprint = graph_fingerprint(engine.data)
        survivors = set(handle.matches)
    finally:
        # request_stop is the SIGTERM path: drain fsyncs the journal
        # and rewrites standing.json before the process exits.
        _stop_daemon(daemon, thread)
        engine.close()

    journal = MutationJournal(wal)
    recovered = journal.recover()
    assert recovered is not None and recovered.version == 1
    assert graph_fingerprint(recovered.graph) == fingerprint

    engine2 = HGMatch(recovered.graph, index_backend="merge")
    service2 = MatchService(engine2, shards=2, journal=journal)
    deltas = []
    assert service2.restore_standing(callback=deltas.append) == 1
    daemon2, (host2, port2), thread2 = _start_daemon(service2)
    try:
        client2 = MatchClient(host2, port2, timeout=30.0)
        after = client2.query(query)
        assert after.embeddings == expected == len(survivors)
        # The restored stream picks up exactly where the journal left
        # off: the next commit's delta carries version 2, and the
        # maintained match set equals a fresh enumeration.
        restored = next(iter(service2._standing.values()))
        assert restored.matches == survivors
        victim2 = min(engine2.data.live_edge_ids())
        outcome2 = client2.mutate(MutationBatch(deletes=[victim2]))
        assert outcome2.version == 2
        assert len(deltas) == 1 and deltas[0].version == 2
        assert restored.matches == full_matches(engine2, query)
    finally:
        _stop_daemon(daemon2, thread2)
        engine2.close()


def test_mux_pool_heals_missed_mutate_via_catchup(instance):
    """The reconnect-replay story for the multiplexed pool: a MUTATE
    send severed mid-broadcast closes the pool (no replica to degrade
    onto), leaving one worker stale.  The next query's reopen finds the
    stale HELLO and repairs it with a CATCHUP stream — before §2.10
    this pool was permanently wedged against external workers."""
    from repro.parallel import FaultPlan, spawn_local_cluster
    from repro.parallel.level_sync import run_level_synchronous
    from repro.service import MuxShardPool, QueryChannel

    data, query = instance
    engine = HGMatch(data, index_backend="merge")
    plan = FaultPlan(seed=37)
    # The pool's first coordinator frame on each connection is the
    # MUTATE itself (the handshake sends none), so pin frame 1.
    plan.sever(1, 0, after_frames=1, role="coordinator")
    cluster = spawn_local_cluster(data, 2, index_backend="merge")
    pool = MuxShardPool(
        addresses=list(cluster.addresses),
        index_backend="merge",
        io_timeout=60.0,
        chaos=plan,
    )
    try:
        pool.ensure_open(engine)
        victim = min(engine.data.live_edge_ids()) if hasattr(
            engine.data, "live_edge_ids"
        ) else 0
        batch = MutationBatch(deletes=[victim])
        result = engine.apply_mutations(batch)
        with pytest.raises(SchedulerError, match="MUTATE send to shard 1"):
            pool.mutate(engine, batch, result)
        assert all(f.consumed for f in plan.faults)
        # Worker 0 applied the batch, worker 1 never saw it: the pool
        # reopens against a mixed-version cluster and catch-up levels
        # them — counts match a rebuild on the mutated graph.
        outcome = run_level_synchronous(QueryChannel(pool), engine, query)
        assert outcome.embeddings == rebuild_count(engine, query, "merge")
    finally:
        pool.close()
        cluster.close()
        engine.close()
