"""Codec fuzzing: malformed bytes must fail *predictably*.

Both decoders that eat bytes straight off the network have a total
contract:

* :func:`repro.core.candidates.candidate_set_from_bytes` (and
  :func:`decode_versioned`) either return a decoded value or raise
  :class:`ValueError` — never ``struct.error``, ``IndexError`` or a
  hang;
* :func:`repro.parallel.transport.decode_frame` /
  :func:`recv_frame` either return ``(kind, body)`` frames or raise
  :class:`TransportError`.

The tests are table-driven over seeded random corruptions — truncation,
bit flips, byte substitutions, spliced garbage, pure noise — and every
failure message logs the seed (and corruption number) for replay.
``REPRO_FUZZ_CASES`` scales the corruption count per corpus entry.
"""

import os
import random
import socket

import pytest

from repro import Hypergraph
from repro.core.candidates import (
    candidate_set_from_bytes,
    decode_versioned,
    encode_chunks_payload,
    encode_mask_payload,
    encode_tuple_payload,
    encode_versioned,
)
from repro.errors import TransportError
from repro.hypergraph import INDEX_BACKENDS, build_index
from repro.parallel import transport

NUM_CASES = int(os.environ.get("REPRO_FUZZ_CASES", "120"))
SEED = 0xC0DEC


def fuzz_graph():
    return Hypergraph(
        labels=["A", "C", "A", "A", "B", "C", "A"],
        edges=[{2, 4}, {4, 6}, {0, 1, 2}, {3, 5, 6},
               {0, 1, 4, 6}, {2, 3, 4, 5}],
    )


def corrupt(rng, payload):
    """One random corruption of ``payload`` (never a no-op by intent)."""
    choice = rng.randrange(6)
    if choice == 0:  # truncate
        return payload[: rng.randrange(len(payload) + 1)]
    if choice == 1:  # flip one bit
        if not payload:
            return b"\x00"
        data = bytearray(payload)
        data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
        return bytes(data)
    if choice == 2:  # overwrite one byte
        if not payload:
            return b"\xff"
        data = bytearray(payload)
        data[rng.randrange(len(data))] = rng.randrange(256)
        return bytes(data)
    if choice == 3:  # splice random garbage into the middle
        at = rng.randrange(len(payload) + 1)
        junk = bytes(rng.randrange(256) for _ in range(rng.randint(1, 8)))
        return payload[:at] + junk + payload[at:]
    if choice == 4:  # drop a middle slice
        if len(payload) < 2:
            return b""
        low = rng.randrange(len(payload))
        high = rng.randrange(low, len(payload) + 1)
        return payload[:low] + payload[high:]
    # pure noise, no relation to the input
    return bytes(rng.randrange(256) for _ in range(rng.randint(0, 64)))


def candidate_corpus(rng):
    """Payloads whose row coordinates fit the 6-row fuzz-graph index."""
    return [
        encode_tuple_payload(()),
        encode_tuple_payload((0, 3, 5)),
        encode_tuple_payload(tuple(sorted(rng.sample(range(10 ** 6), 40)))),
        encode_mask_payload(0b101101),
        encode_mask_payload(rng.getrandbits(6), row_offset=3),
        encode_chunks_payload({0: (1, 5)}),
        encode_chunks_payload({0: rng.getrandbits(6) | 1}),
    ]


def wild_candidate_corpus(rng):
    """Well-formed payloads with out-of-space coordinates — must be
    *rejected* (ValueError), never decoded into absurd masks."""
    return [
        encode_mask_payload(rng.getrandbits(200), row_offset=17),
        encode_mask_payload(1, row_offset=(1 << 32) - 1),
        encode_chunks_payload({0: rng.getrandbits(64) | 1, 3: (2, 4, 8)}),
        encode_chunks_payload({(1 << 32) - 1: (0,)}),
    ]


@pytest.fixture(scope="module")
def indexes():
    graph = fuzz_graph()
    rows = tuple(range(graph.num_edges))
    return [None] + [
        build_index(backend, graph, rows) for backend in INDEX_BACKENDS
    ]


def test_candidate_decoder_accepts_its_own_encodings(indexes):
    rng = random.Random(SEED)
    for payload in candidate_corpus(rng):
        for index in indexes:
            try:
                candidate_set_from_bytes(payload, index)
            except ValueError:
                # Mask/chunk payloads legitimately require an index.
                assert index is None


def test_candidate_decoder_rejects_out_of_space_coordinates(indexes):
    rng = random.Random(SEED)
    for payload in wild_candidate_corpus(rng):
        for index in indexes:
            if index is None or not hasattr(index, "row_to_edge"):
                # merge indexes have no row space of their own; they
                # bound coordinates by the absolute wire ceiling,
                # checked below.
                continue
            with pytest.raises(ValueError):
                candidate_set_from_bytes(payload, index)
    merge = indexes[1 + list(INDEX_BACKENDS).index("merge")]
    assert not hasattr(merge, "row_to_edge")
    for payload in (
        encode_mask_payload(1, row_offset=(1 << 32) - 1),
        encode_chunks_payload({(1 << 32) - 1: (0,)}),
    ):
        with pytest.raises(ValueError):
            candidate_set_from_bytes(payload, merge)


def test_candidate_decoder_never_crashes_on_corruption(indexes):
    rng = random.Random(SEED)
    corpus = candidate_corpus(rng) + wild_candidate_corpus(rng)
    for case in range(NUM_CASES):
        payload = corrupt(rng, corpus[case % len(corpus)])
        for index in indexes:
            try:
                candidate_set_from_bytes(payload, index)
            except ValueError:
                pass
            except Exception as exc:  # pragma: no cover - the bug report
                backend = getattr(index, "backend", None)
                pytest.fail(
                    f"candidate decoder raised {type(exc).__name__} ({exc}) "
                    f"instead of ValueError: seed={SEED:#x} case={case} "
                    f"backend={backend} payload={payload.hex()}"
                )


def test_versioned_wrapper_never_crashes_on_corruption():
    rng = random.Random(SEED + 1)
    base = encode_versioned(encode_tuple_payload((1, 2, 3)))
    assert decode_versioned(base) == encode_tuple_payload((1, 2, 3))
    for case in range(NUM_CASES):
        payload = corrupt(rng, base)
        try:
            decode_versioned(payload)
        except ValueError:
            pass
        except Exception as exc:  # pragma: no cover - the bug report
            pytest.fail(
                f"decode_versioned raised {type(exc).__name__} ({exc}): "
                f"seed={SEED + 1:#x} case={case} payload={payload.hex()}"
            )


# ---------------------------------------------------------------------------
# Transport frames
# ---------------------------------------------------------------------------

def frame_corpus(rng):
    return [
        transport.encode_frame(transport.MSG_STOP),
        transport.encode_frame(transport.MSG_HELLO, b"hello-body"),
        transport.encode_frame(transport.MSG_MUTATE, bytes(rng.randrange(256) for _ in range(64))),
        transport.encode_frame(transport.MSG_DELTA, b"\x00" * 32),
        transport.encode_frame(
            transport.MSG_QREPLY,
            transport.encode_query_body(7, b"payload"),
        ),
    ]


def test_decode_frame_never_crashes_on_corruption():
    rng = random.Random(SEED + 2)
    corpus = frame_corpus(rng)
    for case in range(NUM_CASES):
        data = corrupt(rng, corpus[case % len(corpus)])
        try:
            kind, _ = transport.decode_frame(data)
            assert kind in transport._KNOWN_KINDS
        except TransportError:
            pass
        except Exception as exc:  # pragma: no cover - the bug report
            pytest.fail(
                f"decode_frame raised {type(exc).__name__} ({exc}) instead "
                f"of TransportError: seed={SEED + 2:#x} case={case} "
                f"data={data.hex()}"
            )


def test_recv_frame_never_crashes_or_hangs_on_corrupt_streams():
    """A corrupted byte stream fed through a real socket either yields
    valid frames or dies with TransportError — bounded by a socket
    timeout, so a decoder that hangs fails the test instead of CI."""
    rng = random.Random(SEED + 3)
    corpus = frame_corpus(rng)
    for case in range(40):
        stream = b"".join(
            corrupt(rng, corpus[rng.randrange(len(corpus))])
            for _ in range(rng.randint(1, 4))
        )
        reader, writer = socket.socketpair()
        try:
            reader.settimeout(10.0)
            writer.sendall(stream)
            writer.close()
            for _ in range(16):  # more frames than the stream can hold
                try:
                    kind, _ = transport.recv_frame(reader)
                    assert kind in transport._KNOWN_KINDS
                except TransportError:
                    break
                except Exception as exc:  # pragma: no cover - the bug report
                    pytest.fail(
                        f"recv_frame raised {type(exc).__name__} ({exc}) "
                        f"instead of TransportError: seed={SEED + 3:#x} "
                        f"case={case} stream={stream.hex()}"
                    )
            else:  # pragma: no cover - the bug report
                pytest.fail(
                    f"recv_frame never terminated the corrupt stream: "
                    f"seed={SEED + 3:#x} case={case} stream={stream.hex()}"
                )
        finally:
            reader.close()


def test_recv_frame_round_trips_clean_frames():
    rng = random.Random(SEED + 4)
    frames = frame_corpus(rng)
    reader, writer = socket.socketpair()
    try:
        reader.settimeout(10.0)
        writer.sendall(b"".join(frames))
        writer.close()
        for expected in frames:
            kind, body = transport.recv_frame(reader)
            assert transport.encode_frame(kind, body) == expected
        with pytest.raises(TransportError):
            transport.recv_frame(reader)
    finally:
        reader.close()
