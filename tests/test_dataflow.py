"""Tests for the dataflow model (Section VI-A) and its extensions."""

from __future__ import annotations

import pytest

from repro import Hypergraph, MatchCounters
from repro.dataflow import (
    Aggregate,
    CallbackSink,
    CollectSink,
    CountSink,
    DataflowGraph,
    Filter,
    run_query,
)
from repro.errors import SchedulerError


class TestStructure:
    def test_fig5a_shape(self, fig1_engine, fig1_query):
        """SCAN → EXPAND → EXPAND → SINK for the three-edge Fig. 1 query."""
        graph = DataflowGraph.from_query(fig1_engine, fig1_query)
        description = graph.describe()
        assert description.startswith("SCAN")
        assert description.count("EXPAND") == 2
        assert description.endswith("SINK(count)")

    def test_from_plan(self, fig1_engine, fig1_query):
        plan = fig1_engine.plan(fig1_query)
        graph = DataflowGraph.from_plan(fig1_engine, plan)
        assert graph.execute() == 2


class TestSinks:
    def test_count_sink(self, fig1_engine, fig1_query):
        assert run_query(fig1_engine, fig1_query) == 2

    def test_collect_sink(self, fig1_engine, fig1_query):
        sink = CollectSink()
        embeddings = DataflowGraph.from_query(
            fig1_engine, fig1_query, sink
        ).execute()
        assert {e.canonical() for e in embeddings} == {(0, 2, 4), (1, 3, 5)}

    def test_collect_sink_limit(self, fig1_engine, fig1_query):
        sink = CollectSink(limit=1)
        embeddings = DataflowGraph.from_query(
            fig1_engine, fig1_query, sink
        ).execute()
        assert len(embeddings) == 1

    def test_callback_sink(self, fig1_engine, fig1_query):
        seen = []
        sink = CallbackSink(seen.append)
        count = DataflowGraph.from_query(fig1_engine, fig1_query, sink).execute()
        assert count == 2
        assert len(seen) == 2

    def test_aggregate_sink(self, fig1_engine, fig1_query):
        """Group embeddings by the data edge matched at step 0."""
        sink = Aggregate(key=lambda data, item: item[0])
        groups = DataflowGraph.from_query(fig1_engine, fig1_query, sink).execute()
        assert dict(groups) == {0: 1, 1: 1}


class TestFilterOperator:
    def test_property_filter_drops_embeddings(self, fig1_engine, fig1_query):
        """Keep only embeddings whose first matched edge is e0."""
        keep_e0 = Filter(lambda data, item: item[0] == 0, label="first=e0")
        graph = DataflowGraph.from_query(
            fig1_engine, fig1_query, filters={0: keep_e0}
        )
        assert graph.execute() == 1
        assert "FILTER(first=e0)" in graph.describe()

    def test_pass_through_filter(self, fig1_engine, fig1_query):
        graph = DataflowGraph.from_query(
            fig1_engine,
            fig1_query,
            filters={1: Filter(lambda data, item: True)},
        )
        assert graph.execute() == 2


class TestExecution:
    def test_counters(self, fig1_engine, fig1_query):
        counters = MatchCounters()
        DataflowGraph.from_query(fig1_engine, fig1_query).execute(
            counters=counters
        )
        assert counters.embeddings == 2

    def test_parallel_execution(self, fig1_engine, fig1_query):
        graph = DataflowGraph.from_query(fig1_engine, fig1_query)
        assert graph.execute(workers=2) == 2

    def test_parallel_with_filters_rejected(self, fig1_engine, fig1_query):
        graph = DataflowGraph.from_query(
            fig1_engine,
            fig1_query,
            filters={0: Filter(lambda data, item: True)},
        )
        with pytest.raises(SchedulerError):
            graph.execute(workers=2)

    def test_parallel_with_collect_sink_rejected(self, fig1_engine, fig1_query):
        graph = DataflowGraph.from_query(fig1_engine, fig1_query, CollectSink())
        with pytest.raises(SchedulerError):
            graph.execute(workers=2)

    def test_single_edge_dataflow(self, fig1_engine):
        query = Hypergraph(["A", "B"], [{0, 1}])
        assert run_query(fig1_engine, query) == 2
