"""Tests for the threaded work-stealing executor (Section VI)."""

from __future__ import annotations

import random

import pytest

from repro import HGMatch, TimeoutExceeded
from repro.errors import SchedulerError
from repro.hypergraph.generators import generate_hypergraph
from repro.hypergraph.sampling import query_setting, sample_query
from repro.parallel import ThreadedExecutor


@pytest.fixture(scope="module")
def parallel_instance():
    rng = random.Random(21)
    data = generate_hypergraph(150, 700, 2, 3.0, 6, rng)
    query = sample_query(data, query_setting("q3"), rng)
    engine = HGMatch(data)
    expected = engine.count(query)
    return engine, query, expected


class TestCorrectness:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_parallel_count_equals_sequential(self, parallel_instance, workers):
        engine, query, expected = parallel_instance
        result = ThreadedExecutor(num_workers=workers).run(engine, query)
        assert result.embeddings == expected

    def test_fig1(self, fig1_engine, fig1_query):
        result = ThreadedExecutor(num_workers=3).run(fig1_engine, fig1_query)
        assert result.embeddings == 2

    def test_single_edge_query(self, fig1_engine):
        from repro import Hypergraph

        query = Hypergraph(["A", "B"], [{0, 1}])
        result = ThreadedExecutor(num_workers=2).run(fig1_engine, query)
        assert result.embeddings == 2

    def test_count_entry_point(self, parallel_instance):
        engine, query, expected = parallel_instance
        assert engine.count(query, workers=3) == expected

    def test_steal_one_mode(self, parallel_instance):
        engine, query, expected = parallel_instance
        executor = ThreadedExecutor(num_workers=4, steal_mode="one")
        assert executor.run(engine, query).embeddings == expected

    def test_no_stealing_mode(self, parallel_instance):
        engine, query, expected = parallel_instance
        executor = ThreadedExecutor(num_workers=4, stealing=False)
        assert executor.run(engine, query).embeddings == expected

    def test_deterministic_embedding_count_across_seeds(self, parallel_instance):
        engine, query, expected = parallel_instance
        for seed in range(3):
            executor = ThreadedExecutor(num_workers=4, seed=seed)
            assert executor.run(engine, query).embeddings == expected


class TestAccounting:
    def test_worker_stats_cover_all_tasks(self, parallel_instance):
        engine, query, expected = parallel_instance
        result = ThreadedExecutor(num_workers=4).run(engine, query)
        assert len(result.worker_stats) == 4
        assert sum(s.embeddings for s in result.worker_stats) == expected
        assert sum(s.tasks_executed for s in result.worker_stats) > 0

    def test_counters_merged(self, parallel_instance):
        engine, query, expected = parallel_instance
        result = ThreadedExecutor(num_workers=2).run(engine, query)
        assert result.counters.embeddings == expected
        assert result.counters.candidates >= expected

    def test_load_imbalance_metric(self, parallel_instance):
        engine, query, _ = parallel_instance
        result = ThreadedExecutor(num_workers=2).run(engine, query)
        assert result.load_imbalance() >= 1.0

    def test_worker_stats_rows(self, parallel_instance):
        engine, query, _ = parallel_instance
        result = ThreadedExecutor(num_workers=2).run(engine, query)
        row = result.worker_stats[0].as_row()
        assert {"worker", "tasks", "busy_time"} <= set(row)


class TestConfiguration:
    def test_invalid_worker_count(self):
        with pytest.raises(SchedulerError):
            ThreadedExecutor(num_workers=0)

    def test_invalid_steal_mode(self):
        with pytest.raises(SchedulerError):
            ThreadedExecutor(num_workers=2, steal_mode="all")

    def test_timeout_propagates(self, parallel_instance):
        engine, query, _ = parallel_instance
        with pytest.raises(TimeoutExceeded):
            ThreadedExecutor(num_workers=2).run(engine, query, time_budget=0.0)
