"""Tests for the threaded work-stealing executor (Section VI)."""

from __future__ import annotations

import random

import pytest

from repro import HGMatch, TimeoutExceeded
from repro.errors import SchedulerError
from repro.hypergraph.generators import generate_hypergraph
from repro.hypergraph.sampling import query_setting, sample_query
from repro.parallel import ThreadedExecutor


@pytest.fixture(scope="module")
def parallel_instance():
    rng = random.Random(21)
    data = generate_hypergraph(150, 700, 2, 3.0, 6, rng)
    query = sample_query(data, query_setting("q3"), rng)
    engine = HGMatch(data)
    expected = engine.count(query)
    return engine, query, expected


class TestCorrectness:
    @pytest.mark.parametrize("workers", [1, 2, 4, 8])
    def test_parallel_count_equals_sequential(self, parallel_instance, workers):
        engine, query, expected = parallel_instance
        result = ThreadedExecutor(num_workers=workers).run(engine, query)
        assert result.embeddings == expected

    def test_fig1(self, fig1_engine, fig1_query):
        result = ThreadedExecutor(num_workers=3).run(fig1_engine, fig1_query)
        assert result.embeddings == 2

    def test_single_edge_query(self, fig1_engine):
        from repro import Hypergraph

        query = Hypergraph(["A", "B"], [{0, 1}])
        result = ThreadedExecutor(num_workers=2).run(fig1_engine, query)
        assert result.embeddings == 2

    def test_count_entry_point(self, parallel_instance):
        engine, query, expected = parallel_instance
        assert engine.count(query, workers=3) == expected

    def test_steal_one_mode(self, parallel_instance):
        engine, query, expected = parallel_instance
        executor = ThreadedExecutor(num_workers=4, steal_mode="one")
        assert executor.run(engine, query).embeddings == expected

    def test_no_stealing_mode(self, parallel_instance):
        engine, query, expected = parallel_instance
        executor = ThreadedExecutor(num_workers=4, stealing=False)
        assert executor.run(engine, query).embeddings == expected

    def test_deterministic_embedding_count_across_seeds(self, parallel_instance):
        engine, query, expected = parallel_instance
        for seed in range(3):
            executor = ThreadedExecutor(num_workers=4, seed=seed)
            assert executor.run(engine, query).embeddings == expected


class TestAccounting:
    def test_worker_stats_cover_all_tasks(self, parallel_instance):
        engine, query, expected = parallel_instance
        result = ThreadedExecutor(num_workers=4).run(engine, query)
        assert len(result.worker_stats) == 4
        assert sum(s.embeddings for s in result.worker_stats) == expected
        assert sum(s.tasks_executed for s in result.worker_stats) > 0

    def test_counters_merged(self, parallel_instance):
        engine, query, expected = parallel_instance
        result = ThreadedExecutor(num_workers=2).run(engine, query)
        assert result.counters.embeddings == expected
        assert result.counters.candidates >= expected

    def test_load_imbalance_metric(self, parallel_instance):
        engine, query, _ = parallel_instance
        result = ThreadedExecutor(num_workers=2).run(engine, query)
        assert result.load_imbalance() >= 1.0

    def test_worker_stats_rows(self, parallel_instance):
        engine, query, _ = parallel_instance
        result = ThreadedExecutor(num_workers=2).run(engine, query)
        row = result.worker_stats[0].as_row()
        assert {"worker", "tasks", "busy_time"} <= set(row)


class TestConfiguration:
    def test_invalid_worker_count(self):
        with pytest.raises(SchedulerError):
            ThreadedExecutor(num_workers=0)

    def test_invalid_steal_mode(self):
        with pytest.raises(SchedulerError):
            ThreadedExecutor(num_workers=2, steal_mode="all")

    def test_timeout_propagates(self, parallel_instance):
        engine, query, _ = parallel_instance
        with pytest.raises(TimeoutExceeded):
            ThreadedExecutor(num_workers=2).run(engine, query, time_budget=0.0)


class TestSeeding:
    """Executor RNGs derive from REPRO_SEED, never from the module-global
    random state, so runs are reproducible per job."""

    def test_default_seed_reads_env(self, monkeypatch):
        from repro.parallel import default_seed

        monkeypatch.delenv("REPRO_SEED", raising=False)
        assert default_seed() == 0
        monkeypatch.setenv("REPRO_SEED", "1234")
        assert default_seed() == 1234
        monkeypatch.setenv("REPRO_SEED", "banana")
        with pytest.raises(ValueError):
            default_seed()

    def test_executors_pick_up_repro_seed(self, monkeypatch):
        from repro.parallel import ProcessShardExecutor, SimulatedExecutor

        monkeypatch.setenv("REPRO_SEED", "77")
        assert ThreadedExecutor(2).seed == 77
        assert SimulatedExecutor(2).seed == 77
        assert ProcessShardExecutor(2).seed == 77
        # Explicit seeds still win.
        assert ThreadedExecutor(2, seed=5).seed == 5

    def test_global_random_state_does_not_leak_into_jobs(
        self, parallel_instance
    ):
        import random as random_module

        engine, query, expected = parallel_instance
        executor = ThreadedExecutor(num_workers=3, seed=9)
        random_module.seed(1)
        first = executor.run(engine, query)
        random_module.seed(2)
        second = executor.run(engine, query)
        assert first.embeddings == second.embeddings == expected
        # Every task is expanded exactly once whatever the interleaving,
        # so the whole work funnel is reproducible (steal *traces* are
        # not: which deques are non-empty when a thief looks is a race;
        # only the victim choice among them is seeded).
        for field in ("candidates", "filtered", "embeddings", "work_units"):
            assert getattr(first.counters, field) == getattr(
                second.counters, field
            )

    def test_simulated_runs_reproducible_under_seed(self, parallel_instance):
        from repro.parallel import SimulatedExecutor

        engine, query, expected = parallel_instance
        runs = [
            SimulatedExecutor(num_workers=4, seed=13).run(engine, query)
            for _ in range(2)
        ]
        assert runs[0].embeddings == runs[1].embeddings == expected
        assert runs[0].makespan == runs[1].makespan
        assert runs[0].total_steals == runs[1].total_steals
