"""Tests for the dataset registry and the JF17K-style knowledge base."""

from __future__ import annotations

import pytest

from repro import HGMatch
from repro.datasets import (
    DATASET_ORDER,
    PAPER_PROFILES,
    SCALED_SPECS,
    SINGLE_THREAD_DATASETS,
    KBSpec,
    build_dataset,
    build_knowledge_base,
    dataset_names,
    dataset_spec,
    load_dataset,
    load_store,
    query_players_two_teams,
    query_recast_character,
)
from repro.datasets.jf17k import ACTOR, CHARACTER, MATCH, PLAYER, SEASON, TEAM, TVSHOW


class TestRegistry:
    def test_all_ten_datasets_present(self):
        assert dataset_names() == DATASET_ORDER
        assert len(DATASET_ORDER) == 10
        assert set(SCALED_SPECS) == set(PAPER_PROFILES) == set(DATASET_ORDER)

    def test_single_thread_lineup_excludes_ar(self):
        assert "AR" not in SINGLE_THREAD_DATASETS
        assert len(SINGLE_THREAD_DATASETS) == 9

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            dataset_spec("XX")

    def test_load_is_cached(self):
        assert load_dataset("HC") is load_dataset("HC")
        assert load_store("HC") is load_store("HC")

    def test_build_is_deterministic(self):
        spec = dataset_spec("CH")
        assert build_dataset(spec) == build_dataset(spec)

    @pytest.mark.parametrize("name", DATASET_ORDER)
    def test_scaled_shape_tracks_paper_profile(self, name):
        """The analogue preserves the paper profile's shape: alphabet size
        regime, arity bounds, and the vertex-rich vs edge-rich ratio."""
        graph = load_dataset(name)
        spec = SCALED_SPECS[name]
        paper = PAPER_PROFILES[name]
        assert graph.max_arity() <= spec.max_arity
        assert len(graph.label_alphabet()) <= spec.num_labels
        vertex_rich_paper = paper.num_vertices > paper.num_edges
        vertex_rich_scaled = graph.num_vertices > graph.num_edges
        assert vertex_rich_paper == vertex_rich_scaled


class TestKnowledgeBase:
    def test_schemas_present(self):
        kb = build_knowledge_base()
        signatures = {kb.edge_signature(e) for e in range(kb.num_edges)}
        assert tuple(sorted([PLAYER, TEAM, MATCH])) in signatures
        assert tuple(sorted([ACTOR, CHARACTER, TVSHOW, SEASON])) in signatures

    def test_queries_have_answers(self):
        kb = build_knowledge_base()
        engine = HGMatch(kb)
        assert engine.count(query_players_two_teams()) > 0
        assert engine.count(query_recast_character()) > 0

    def test_query_shapes_match_fig13(self):
        q1 = query_players_two_teams()
        assert q1.num_edges == 2
        assert q1.num_vertices == 5
        q2 = query_recast_character()
        assert q2.num_edges == 2
        assert q2.num_vertices == 6

    def test_answers_bind_distinct_teams(self):
        """Fig. 13a semantics: the two facts must use different teams
        (injectivity enforces it)."""
        kb = build_knowledge_base()
        engine = HGMatch(kb)
        query = query_players_two_teams()
        for embedding in engine.match(query):
            for mapping in embedding.vertex_mappings():
                assert mapping[1] != mapping[3]  # the two Team vertices
                break

    def test_kb_deterministic(self):
        assert build_knowledge_base() == build_knowledge_base()

    def test_custom_spec(self):
        small = build_knowledge_base(KBSpec(num_players=10, num_actors=5, seed=3))
        assert small.num_edges > 0
