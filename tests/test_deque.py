"""Unit and concurrency tests for the work-stealing deque."""

from __future__ import annotations

import threading

from repro.parallel import WorkStealingDeque


class TestOwnerSemantics:
    def test_lifo_pop(self):
        deque = WorkStealingDeque()
        deque.push(1)
        deque.push(2)
        deque.push(3)
        assert deque.pop() == 3
        assert deque.pop() == 2
        assert deque.pop() == 1
        assert deque.pop() is None

    def test_push_many_keeps_depth_first_order(self):
        deque = WorkStealingDeque()
        deque.push_many([1, 2, 3])
        assert deque.pop() == 3

    def test_peak_size_tracking(self):
        deque = WorkStealingDeque()
        for value in range(5):
            deque.push(value)
        deque.pop()
        deque.pop()
        assert deque.peak_size == 5
        assert len(deque) == 3


class TestThiefSemantics:
    def test_steal_half_takes_tail(self):
        deque = WorkStealingDeque()
        deque.push_many([1, 2, 3, 4])  # head: 4 3 2 1 :tail
        stolen = deque.steal_half()
        assert stolen == [1, 2]
        assert deque.pop() == 4

    def test_steal_from_singleton(self):
        deque = WorkStealingDeque()
        deque.push(7)
        assert deque.steal_half() == [7]
        assert deque.pop() is None

    def test_steal_from_empty(self):
        deque = WorkStealingDeque()
        assert deque.steal_half() == []
        assert deque.steal_one() is None

    def test_steal_one(self):
        deque = WorkStealingDeque()
        deque.push_many([1, 2, 3])
        assert deque.steal_one() == 1
        assert len(deque) == 2


class TestConcurrency:
    def test_no_item_lost_or_duplicated_under_contention(self):
        """Owner pushes/pops while four thieves steal; every item must be
        consumed exactly once."""
        deque = WorkStealingDeque()
        total = 4000
        consumed = []
        consumed_lock = threading.Lock()
        done = threading.Event()

        def owner():
            for value in range(total):
                deque.push(value)
                if value % 3 == 0:
                    item = deque.pop()
                    if item is not None:
                        with consumed_lock:
                            consumed.append(item)
            done.set()

        def thief():
            while not done.is_set() or len(deque):
                stolen = deque.steal_half()
                if stolen:
                    with consumed_lock:
                        consumed.extend(stolen)

        threads = [threading.Thread(target=owner)] + [
            threading.Thread(target=thief) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        while True:
            item = deque.pop()
            if item is None:
                break
            consumed.append(item)
        assert sorted(consumed) == list(range(total))
