"""Tests for the bipartite conversion (Fig. 2 of the paper)."""

from __future__ import annotations

from repro.baselines.bipartite import BipartiteGraph, convert, inflation_factor


class TestConversion:
    def test_fig2_shape(self, fig1_data):
        """Fig. 2: the converted Fig. 1b data graph has 7 lower and 6
        upper vertices and one binary edge per incidence."""
        bipartite = BipartiteGraph(fig1_data)
        assert bipartite.num_lower == 7
        assert bipartite.num_upper == 6
        assert bipartite.num_vertices == 13
        assert bipartite.num_edges == 18  # sum of arities

    def test_lower_labels_preserved(self, fig1_data):
        bipartite = BipartiteGraph(fig1_data)
        assert bipartite.labels[:7] == list(fig1_data.labels)

    def test_upper_labels_encode_arity(self, fig1_data):
        bipartite = BipartiteGraph(fig1_data)
        assert bipartite.labels[7] == ("E", 2)   # e0 = {v2, v4}
        assert bipartite.labels[11] == ("E", 4)  # e4

    def test_adjacency_is_incidence(self, fig1_data):
        bipartite = BipartiteGraph(fig1_data)
        edge_node = 7 + 4  # e4 = {0, 1, 4, 6}
        assert bipartite.neighbours(edge_node) == [0, 1, 4, 6]
        assert edge_node in bipartite.neighbours(0)

    def test_is_upper_and_edge_id_of(self, fig1_data):
        bipartite = BipartiteGraph(fig1_data)
        assert not bipartite.is_upper(6)
        assert bipartite.is_upper(7)
        assert bipartite.edge_id_of(9) == 2

    def test_degree(self, fig1_data):
        bipartite = BipartiteGraph(fig1_data)
        assert bipartite.degree(4) == fig1_data.degree(4)
        assert bipartite.degree(7) == fig1_data.arity(0)

    def test_convert_helper(self, fig1_data):
        assert convert(fig1_data).num_vertices == 13

    def test_inflation_factor(self, fig1_data):
        vertices, edges = inflation_factor(fig1_data)
        assert vertices == 13
        assert edges == 18
