"""The differential mutation oracle.

Seeded random mutation schedules (interleaved inserts / deletes /
vertex adds) are driven against an incrementally maintained engine and
a from-scratch rebuild of the mutated graph's frozen snapshot.  The
rebuild *is* the oracle: counts must be bit-identical after every step,
on every index backend, under every executor.

Every assertion message carries the seed, so any failure is replayable
with::

    rng = random.Random(seed)
    data, query, _ = make_mutable_instance(rng)
    schedule = random_mutation_schedule(rng, data, steps=STEPS)

and shrinkable to a minimal prefix with
:func:`repro.testing.shrink_mutation_schedule`.

``REPRO_MUTATION_SCHEDULES`` scales the sequential sweep (default 51
per backend — the full acceptance bar; CI's mutation-smoke job runs a
reduced count).
"""

import os
import random

import pytest

import repro.testing
from repro.hypergraph import INDEX_BACKENDS
from repro.testing import (
    make_mutable_instance,
    random_mutation_schedule,
    run_mutation_differential,
    shrink_mutation_schedule,
)

NUM_SCHEDULES = int(os.environ.get("REPRO_MUTATION_SCHEDULES", "51"))
STEPS = 5


def prepared_schedule(seed, steps=STEPS):
    """The replayable (data, query, schedule) for ``seed``, or None."""
    rng = random.Random(seed)
    instance = make_mutable_instance(rng)
    if instance is None:
        return None
    data, query, _ = instance
    return data, query, random_mutation_schedule(rng, data, steps=steps)


def sweep(backend, executor, num_schedules, first_seed=0, steps=STEPS):
    """Run ``num_schedules`` seeded schedules; return failure reports.

    Seeds are consumed in order starting at ``first_seed``; instances
    whose sampling failed are skipped without burning a schedule slot,
    so every run checks exactly ``num_schedules`` real schedules.
    """
    failures = []
    checked = 0
    seed = first_seed
    while checked < num_schedules:
        prepared = prepared_schedule(seed, steps=steps)
        seed += 1
        if prepared is None:
            continue
        data, query, schedule = prepared
        divergence = run_mutation_differential(
            data, query, schedule, index_backend=backend, executor=executor
        )
        if divergence is not None:
            prefix, located = shrink_mutation_schedule(
                data, query, schedule,
                index_backend=backend, executor=executor,
            )
            failures.append(
                {
                    "seed": seed - 1,
                    "divergence": located,
                    "minimal_prefix_len": len(prefix),
                }
            )
        checked += 1
    return failures


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_oracle_sequential(backend):
    failures = sweep(backend, executor=None, num_schedules=NUM_SCHEDULES)
    assert not failures, (
        f"mutation oracle diverged (backend={backend}, executor=None); "
        f"replay with these seeds: {failures}"
    )


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_oracle_threads(backend):
    failures = sweep(
        backend, executor="threads", num_schedules=3, first_seed=100, steps=4
    )
    assert not failures, (
        f"mutation oracle diverged (backend={backend}, executor=threads); "
        f"replay with these seeds: {failures}"
    )


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_oracle_processes(backend):
    failures = sweep(
        backend, executor="processes", num_schedules=2,
        first_seed=200, steps=3,
    )
    assert not failures, (
        f"mutation oracle diverged (backend={backend}, "
        f"executor=processes); replay with these seeds: {failures}"
    )


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_oracle_sockets(backend):
    failures = sweep(
        backend, executor="sockets", num_schedules=2,
        first_seed=300, steps=3,
    )
    assert not failures, (
        f"mutation oracle diverged (backend={backend}, executor=sockets); "
        f"replay with these seeds: {failures}"
    )


# ---------------------------------------------------------------------------
# The shrinker itself
# ---------------------------------------------------------------------------

def test_shrinker_finds_minimal_failing_prefix(monkeypatch):
    """Bisection must land on the exact shortest failing prefix.

    The runner is faked: prefixes of length >= 4 "diverge at step 3",
    shorter ones pass — so the minimal reproducer has length 4 and the
    reported divergence is the fake's triple.
    """
    calls = []

    def fake_runner(data, query, prefix, **kwargs):
        calls.append(len(prefix))
        return (3, 7, 9) if len(prefix) >= 4 else None

    monkeypatch.setattr(
        repro.testing, "run_mutation_differential", fake_runner
    )
    schedule = list(range(10))  # opaque to the fake
    prefix, divergence = shrink_mutation_schedule(None, None, schedule)
    assert len(prefix) == 4
    assert prefix == schedule[:4]
    assert divergence == (3, 7, 9)
    # Bisection, not a linear scan: far fewer probes than prefixes.
    assert len(calls) <= 6


def test_shrinker_rejects_passing_schedule(monkeypatch):
    monkeypatch.setattr(
        repro.testing,
        "run_mutation_differential",
        lambda *args, **kwargs: None,
    )
    with pytest.raises(ValueError):
        shrink_mutation_schedule(None, None, [1, 2, 3])


def test_shrinker_single_step_failure(monkeypatch):
    """A schedule failing on its very first step shrinks to length 1."""
    monkeypatch.setattr(
        repro.testing,
        "run_mutation_differential",
        lambda data, query, prefix, **kwargs: (0, 1, 2) if prefix else None,
    )
    prefix, divergence = shrink_mutation_schedule(None, None, [5, 6, 7])
    assert prefix == [5]
    assert divergence == (0, 1, 2)


def test_schedules_are_reproducible():
    """Same seed, same schedule — the replay contract behind the logged
    seeds in every oracle assertion."""
    first = prepared_schedule(17)
    second = prepared_schedule(17)
    assert first is not None and second is not None
    assert first[2] == second[2]
