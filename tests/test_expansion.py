"""Unit tests for vertex-mapping expansion (profile classes)."""

from __future__ import annotations

from repro import Hypergraph
from repro.core.expansion import (
    count_vertex_mappings,
    data_profile_classes,
    iter_vertex_mappings,
    query_profile_classes,
)


class TestProfileClasses:
    def test_fig1_query_classes(self, fig1_query):
        classes = query_profile_classes(fig1_query, (0, 1, 2))
        # Every Fig. 1 query vertex has a unique profile.
        assert all(len(members) == 1 for members in classes.values())
        assert sum(len(m) for m in classes.values()) == 5

    def test_symmetric_vertices_share_class(self):
        query = Hypergraph(["A", "A", "B"], [{0, 1, 2}])
        classes = query_profile_classes(query, (0,))
        assert sorted(map(len, classes.values())) == [1, 2]

    def test_data_classes_match_query_on_isomorphic_instance(self, fig1_data, fig1_query):
        query_classes = query_profile_classes(fig1_query, (0, 1, 2))
        data_classes = data_profile_classes(fig1_data, (0, 2, 4))
        assert set(query_classes) == set(data_classes)


class TestCounting:
    def test_factorial_counting(self):
        """Two interchangeable A-vertices → 2! vertex mappings."""
        query = Hypergraph(["A", "A", "B"], [{0, 1, 2}])
        data = Hypergraph(["A", "A", "B"], [{0, 1, 2}])
        assert count_vertex_mappings(data, query, (0,), (0,)) == 2

    def test_mismatched_classes_count_zero(self):
        query = Hypergraph(["A", "A", "B"], [{0, 1, 2}])
        data = Hypergraph(["A", "B", "B"], [{0, 1, 2}])
        assert count_vertex_mappings(data, query, (0,), (0,)) == 0

    def test_count_matches_enumeration(self, fig1_data, fig1_query):
        count = count_vertex_mappings(fig1_data, fig1_query, (0, 1, 2), (0, 2, 4))
        enumerated = list(
            iter_vertex_mappings(fig1_data, fig1_query, (0, 1, 2), (0, 2, 4))
        )
        assert count == len(enumerated) == 1

    def test_multi_class_product(self):
        """Two classes of size 2 → 2! × 2! = 4 mappings."""
        query = Hypergraph(["A", "A", "B", "B"], [{0, 1, 2, 3}])
        data = Hypergraph(["A", "A", "B", "B"], [{0, 1, 2, 3}])
        assert count_vertex_mappings(data, query, (0,), (0,)) == 4
        assert len(list(iter_vertex_mappings(data, query, (0,), (0,)))) == 4


class TestEnumeratedMappings:
    def test_mappings_are_valid_isomorphisms(self, fig1_data, fig1_query):
        for mapping in iter_vertex_mappings(
            fig1_data, fig1_query, (0, 1, 2), (1, 3, 5)
        ):
            assert len(set(mapping.values())) == len(mapping)
            for edge in fig1_query.edges:
                image = {mapping[u] for u in edge}
                assert fig1_data.has_edge(image)

    def test_invalid_tuple_yields_nothing(self, fig1_data, fig1_query):
        assert (
            list(iter_vertex_mappings(fig1_data, fig1_query, (0, 1, 2), (0, 2, 5)))
            == []
        )
