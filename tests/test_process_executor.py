"""The multiprocess shard executor: parity, accounting and lifecycle.

The correctness bar is bit-identical counts against the sequential
engine for every index backend — the acceptance gate of the sharded
execution subsystem — plus the funnel counters (candidates / filtered /
final_*) matching exactly, since each candidate is generated and
validated in exactly one shard.
"""

from __future__ import annotations

import random

import pytest

from repro import HGMatch, Hypergraph
from repro.core.counters import MatchCounters
from repro.errors import QueryError, SchedulerError, TimeoutExceeded
from repro.hypergraph import INDEX_BACKENDS
from repro.parallel import ProcessShardExecutor
from repro.testing import make_random_instance


@pytest.fixture(scope="module")
def workload_instances():
    """A deterministic batch of small (data, query) pairs."""
    rng = random.Random(987)
    instances = []
    while len(instances) < 6:
        instance = make_random_instance(rng)
        if instance is not None:
            instances.append(instance)
    return instances


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_counts_match_sequential(workload_instances, backend, num_shards):
    for data, query in workload_instances:
        engine = HGMatch(data, index_backend=backend, shards=num_shards)
        try:
            expected = engine.count(query)
            assert engine.count(query, executor="processes") == expected
            assert engine.count_bfs(query, executor="processes") == expected
        finally:
            engine.close()


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_counter_funnel_matches_sequential(workload_instances, backend):
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend=backend, shards=3)
    try:
        sequential = MatchCounters()
        expected = engine.count(query, counters=sequential)
        sharded = MatchCounters()
        assert engine.count(
            query, executor="processes", counters=sharded
        ) == expected
        # Disjoint row ownership: every candidate is produced and
        # validated exactly once across the pool, so the funnel is exact.
        assert sharded.candidates == sequential.candidates
        assert sharded.filtered == sequential.filtered
        assert sharded.final_candidates == sequential.final_candidates
        assert sharded.final_filtered == sequential.final_filtered
        assert sharded.embeddings == sequential.embeddings
        assert sharded.work_model == sequential.work_model
    finally:
        engine.close()


@pytest.mark.parametrize("backend", ("bitset", "adaptive"))
def test_mask_backends_ship_masks_not_edge_lists(workload_instances, backend):
    """Payloads crossing the process boundary must be row payloads
    (bitmask/chunk tags), never decoded edge-id tuples."""
    from repro.core.candidates import _WIRE_CHUNKS, _WIRE_MASK, _WIRE_TUPLE
    from repro.hypergraph import StoreShard
    from repro.parallel.level_sync import encode_survivors

    data, query = workload_instances[0]
    shard = StoreShard.build(data, 0, 2, index_backend=backend)
    signature = next(iter(shard.partitions))
    index = shard.partition(signature).index
    payload = encode_survivors(backend, [0], [], 7, index)
    # bitset ships masks; adaptive ships whichever row representation
    # (mask or chunk map) is smaller — never a decoded edge-id tuple.
    assert payload[0] in (_WIRE_MASK, _WIRE_CHUNKS)
    assert payload[0] != _WIRE_TUPLE
    if backend == "adaptive":
        dense = encode_survivors(
            backend, list(range(min(64, len(index.row_to_edge)) or 1)), [], 0,
            index,
        )
        assert dense[0] in (_WIRE_MASK, _WIRE_CHUNKS)

    engine = HGMatch(data, index_backend=backend)
    executor = ProcessShardExecutor(2, index_backend=backend)
    try:
        result = executor.run(engine, query)
        assert result.embeddings == engine.count(query)
        assert len(result.worker_stats) == 2
        # Each shard reports the bytes it actually shipped.
        assert all(s.payload_bytes >= 0 for s in result.worker_stats)
    finally:
        executor.close()
        engine.close()


def test_pool_persists_across_queries(workload_instances):
    data, first_query = workload_instances[0]
    engine = HGMatch(data, index_backend="bitset", shards=2)
    try:
        executor = engine.shard_executor()
        assert engine.count(first_query, executor="processes") == engine.count(
            first_query
        )
        # Same pool object serves the next query against the same data.
        assert engine.shard_executor() is executor
        assert engine.count(first_query, executor="processes") == engine.count(
            first_query
        )
        # Asking for a different shard count rebuilds the pool.
        other = engine.shard_executor(3)
        assert other is not executor
        assert other.num_shards == 3
    finally:
        engine.close()


def test_results_are_reproducible_across_runs(workload_instances):
    data, query = workload_instances[1]
    engine = HGMatch(data, index_backend="adaptive", shards=2)
    try:
        first = engine.shard_executor().run(engine, query)
        second = engine.shard_executor().run(engine, query)
        assert first.embeddings == second.embeddings
        assert first.counters.as_row() == second.counters.as_row()
        assert [s.payload_bytes for s in first.worker_stats] == [
            s.payload_bytes for s in second.worker_stats
        ]
    finally:
        engine.close()


def test_backend_mismatch_is_rejected(workload_instances):
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="merge")
    executor = ProcessShardExecutor(2, index_backend="bitset")
    try:
        with pytest.raises(SchedulerError):
            executor.run(engine, query)
    finally:
        executor.close()
        engine.close()


def test_invalid_executor_and_shards():
    data = Hypergraph(labels=["A", "A"], edges=[{0, 1}])
    query = Hypergraph(labels=["A", "A"], edges=[{0, 1}])
    engine = HGMatch(data)
    with pytest.raises(QueryError):
        engine.count(query, executor="warp-drive")
    with pytest.raises(QueryError):
        engine.count_bfs(query, executor="warp-drive")
    with pytest.raises(QueryError):
        HGMatch(data, shards=0)
    with pytest.raises(SchedulerError):
        ProcessShardExecutor(0)


def test_single_step_query(fig1_data):
    """num_steps == 1: the SCAN level is also the final level."""
    query = Hypergraph(labels=["A", "B"], edges=[{0, 1}])
    engine = HGMatch(fig1_data, shards=2)
    try:
        expected = engine.count(query)
        assert engine.count(query, executor="processes") == expected
    finally:
        engine.close()


def test_workers_names_parallelism_when_shards_unset(workload_instances):
    """count(workers=N, executor="processes") on an unsharded engine
    runs N worker processes, matching every other executor's meaning of
    ``workers``."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="bitset")  # shards defaults to 1
    try:
        expected = engine.count(query)
        assert (
            engine.count(query, workers=3, executor="processes") == expected
        )
        assert engine._shard_executor.num_shards == 3
    finally:
        engine.close()


def test_dead_worker_tears_pool_down(workload_instances):
    """A killed worker must surface as SchedulerError and leave the
    executor able to rebuild a healthy pool on the next run."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="bitset")
    executor = ProcessShardExecutor(2, index_backend="bitset")
    try:
        expected = engine.count(query)
        assert executor.run(engine, query).embeddings == expected
        executor._processes[0].terminate()
        executor._processes[0].join(timeout=2.0)
        with pytest.raises(SchedulerError):
            executor.run(engine, query)
        # The failed run closed the pool; the next run rebuilds it.
        assert executor.run(engine, query).embeddings == expected
    finally:
        executor.close()
        engine.close()


def test_timeout_raises(workload_instances):
    data, query = workload_instances[0]
    engine = HGMatch(data, shards=2)
    try:
        with pytest.raises(TimeoutExceeded):
            engine.count(query, executor="processes", time_budget=-1.0)
        # The pool survives a timeout and still answers correctly.
        assert engine.count(query, executor="processes") == engine.count(query)
    finally:
        engine.close()


def test_spawn_start_method(workload_instances):
    """The worker protocol must survive the spawn start method (fresh
    interpreter, everything crossing as pickles)."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="bitset")
    executor = ProcessShardExecutor(
        2, index_backend="bitset", start_method="spawn"
    )
    try:
        assert executor.run(engine, query).embeddings == engine.count(query)
    finally:
        executor.close()
        engine.close()


def test_fig1_running_example_across_executors(fig1_data, fig1_query):
    engine = HGMatch(fig1_data, shards=2)
    try:
        expected = engine.count(fig1_query)
        assert engine.count(fig1_query, executor="threads", workers=3) == expected
        assert engine.count(fig1_query, executor="processes") == expected
        assert engine.count(fig1_query, executor="simulated", workers=3) == expected
        assert engine.count_bfs(fig1_query) == expected
        assert (
            engine.count_bfs(fig1_query, executor="threads", workers=3)
            == expected
        )
        assert engine.count_bfs(fig1_query, executor="processes") == expected
        assert engine.count_bfs(fig1_query, executor="simulated") == expected
    finally:
        engine.close()
