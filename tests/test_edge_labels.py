"""Tests for edge-labelled hypergraphs (paper footnote 2).

"Our techniques can be easily applied to edge-labelled hypergraphs as
well by adding additional constraints of hyperedge labels" — realised
here by folding the edge label into the hyperedge signature, which makes
signature partitioning enforce the extra constraint for free.
"""

from __future__ import annotations

import random

import pytest

from repro import HGMatch, Hypergraph, HypergraphBuilder
from repro.baselines import BASELINE_NAMES, brute_force, make_baseline
from repro.errors import HypergraphError


@pytest.fixture
def labelled_data() -> Hypergraph:
    """Two relations over the same entity pairs: 'friend' and 'foe'."""
    return Hypergraph(
        labels=["A", "A", "A", "A"],
        edges=[{0, 1}, {0, 1}, {1, 2}, {2, 3}, {1, 2}],
        edge_labels=["friend", "foe", "friend", "friend", "foe"],
    )


class TestModel:
    def test_same_vertex_set_different_labels_coexist(self, labelled_data):
        assert labelled_data.num_edges == 5
        assert labelled_data.edge_label(0) == "friend"
        assert labelled_data.edge_label(1) == "foe"
        assert labelled_data.edge(0) == labelled_data.edge(1)

    def test_duplicate_labelled_edges_deduped(self):
        graph = Hypergraph(
            ["A", "A"], [{0, 1}, {0, 1}], edge_labels=["x", "x"]
        )
        assert graph.num_edges == 1

    def test_signature_includes_edge_label(self, labelled_data):
        assert labelled_data.edge_signature(0) == ("friend", "A", "A")
        assert labelled_data.edge_signature(1) == ("foe", "A", "A")

    def test_lookup_requires_label(self, labelled_data):
        assert labelled_data.has_edge({0, 1}, label="foe")
        assert not labelled_data.has_edge({2, 3}, label="foe")
        with pytest.raises(HypergraphError):
            labelled_data.has_edge({0, 1})

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph(["A", "A"], [{0, 1}], edge_labels=["x", "y"])

    def test_unlabelled_graph_reports_none(self, fig1_data):
        assert not fig1_data.is_edge_labelled
        assert fig1_data.edge_label(0) is None

    def test_equality_distinguishes_edge_labels(self):
        first = Hypergraph(["A", "A"], [{0, 1}], edge_labels=["x"])
        second = Hypergraph(["A", "A"], [{0, 1}], edge_labels=["y"])
        third = Hypergraph(["A", "A"], [{0, 1}])
        assert first != second
        assert first != third

    def test_induced_preserves_edge_labels(self, labelled_data):
        sub = labelled_data.induced_by_edges([1, 4])
        assert sub.is_edge_labelled
        assert set(sub.edge_label(e) for e in range(sub.num_edges)) == {"foe"}

    def test_builder_with_labels(self):
        builder = HypergraphBuilder()
        a = builder.add_vertex("A")
        b = builder.add_vertex("A")
        builder.add_edge([a, b], label="rel")
        graph = builder.build()
        assert graph.is_edge_labelled

    def test_builder_rejects_mixed_labelling(self):
        builder = HypergraphBuilder()
        a = builder.add_vertex("A")
        b = builder.add_vertex("A")
        builder.add_edge([a, b], label="rel")
        builder.add_edge([a, b])
        with pytest.raises(HypergraphError):
            builder.build()


class TestMatching:
    def test_edge_label_constrains_matching(self, labelled_data):
        """A 'friend'-'friend' path must not match a 'friend'-'foe' path."""
        query = Hypergraph(
            ["A", "A", "A"],
            [{0, 1}, {1, 2}],
            edge_labels=["friend", "friend"],
        )
        engine = HGMatch(labelled_data)
        found = {e.canonical() for e in engine.match(query, strict=True)}
        # friend edges: 0={0,1}, 2={1,2}, 3={2,3}; paths: (0,2),(2,0),
        # (2,3),(3,2) as ordered edge tuples over distinct vertices.
        for tuple_ in found:
            for edge_id in tuple_:
                assert labelled_data.edge_label(edge_id) == "friend"
        assert len(found) >= 2

    def test_mixed_label_query(self, labelled_data):
        query = Hypergraph(
            ["A", "A", "A"],
            [{0, 1}, {1, 2}],
            edge_labels=["friend", "foe"],
        )
        engine = HGMatch(labelled_data)
        for embedding in engine.match(query, strict=True):
            mapping = embedding.hyperedge_mapping()
            assert labelled_data.edge_label(mapping[0]) == "friend"
            assert labelled_data.edge_label(mapping[1]) == "foe"

    def test_no_match_across_labels(self):
        data = Hypergraph(["A", "A"], [{0, 1}], edge_labels=["x"])
        query = Hypergraph(["A", "A"], [{0, 1}], edge_labels=["y"])
        assert HGMatch(data).count(query) == 0

    def test_all_engines_agree_on_labelled_instances(self):
        rng = random.Random(77)
        for _ in range(6):
            num_vertices = rng.randint(5, 9)
            labels = [rng.choice("AB") for _ in range(num_vertices)]
            edges = []
            edge_labels = []
            for _ in range(rng.randint(3, 8)):
                edges.append(rng.sample(range(num_vertices), rng.randint(2, 3)))
                edge_labels.append(rng.choice(["r", "s"]))
            data = Hypergraph(labels, edges, edge_labels=edge_labels)
            if data.num_edges < 2:
                continue
            start = rng.randrange(data.num_edges)
            adjacent = [
                e for e in data.adjacent_edges(start)
            ]
            if not adjacent:
                continue
            query = data.induced_by_edges([start, adjacent[0]])
            reference = brute_force(data, query)
            engine = HGMatch(data)
            found = {e.canonical() for e in engine.match(query, strict=True)}
            assert found == reference.hyperedge_tuples
            for name in BASELINE_NAMES:
                matcher = make_baseline(name, data)
                assert matcher.hyperedge_embeddings(query) == reference.hyperedge_tuples, name
