"""Unit tests for embedding validation (Algorithm 5, Theorem V.2)."""

from __future__ import annotations

from repro import Hypergraph
from repro.core.candidates import vertex_step_map
from repro.core.counters import MatchCounters
from repro.core.plan import build_execution_plan
from repro.core.validation import certify_embedding, is_valid_expansion


def validate(data, query, order, matched, candidate, counters=None):
    plan = build_execution_plan(query, order)
    step_plan = plan.steps[len(matched)]
    vmap = vertex_step_map(data, matched)
    return is_valid_expansion(
        data, step_plan, vmap, len(vmap), candidate, counters
    )


class TestFig1Validation:
    def test_true_embedding_accepted(self, fig1_data, fig1_query):
        assert validate(fig1_data, fig1_query, (0, 1, 2), (0, 2), 4)

    def test_wrong_final_edge_rejected(self, fig1_data, fig1_query):
        """e6 (0-based 5) closes the wrong branch for m=(e1,e3)."""
        assert not validate(fig1_data, fig1_query, (0, 1, 2), (0, 2), 5)


class TestExampleV2:
    """The paper's Fig. 4: profile multisets differ, so the candidate is
    rejected even though signatures and vertex counts agree."""

    def _instance(self):
        query = Hypergraph(
            ["B", "A", "A", "A", "A", "A"],
            [{0, 1, 2}, {3, 4, 5}, {2, 3, 4}],
        )
        data = Hypergraph(
            ["B", "A", "A", "A", "A", "A"],
            [{0, 1, 2}, {3, 4, 5}, {1, 2, 3}],
        )
        return query, data

    def test_vertex_count_check_passes(self):
        query, data = self._instance()
        plan = build_execution_plan(query, (0, 1, 2))
        vmap = vertex_step_map(data, (0, 1))
        new_vertices = sum(1 for v in data.edge(2) if v not in vmap)
        assert len(vmap) + new_vertices == plan.steps[2].expected_num_vertices

    def test_profile_mismatch_rejected(self):
        query, data = self._instance()
        assert not validate(data, query, (0, 1, 2), (0, 1), 2)

    def test_certify_agrees(self):
        query, data = self._instance()
        assert not certify_embedding(data, query, (0, 1, 2), (0, 1, 2))


class TestObservationV5:
    def test_vertex_count_mismatch_rejected(self):
        """A candidate reusing covered vertices fails Observation V.5."""
        data = Hypergraph(
            ["A", "A", "A", "A"],
            [{0, 1}, {1, 2}, {2, 3}, {0, 2}],
        )
        # Query: a path of three 2-ary edges over 4 distinct vertices.
        query = Hypergraph(["A", "A", "A", "A"], [{0, 1}, {1, 2}, {2, 3}])
        # Matching {0,1}→{0,1}, {1,2}→{1,2}; candidate {0,2} adds no new
        # vertex but the query expects one.
        assert not validate(data, query, (0, 1, 2), (0, 1), 3)
        assert validate(data, query, (0, 1, 2), (0, 1), 2)

    def test_counters_track_filtered(self, fig1_data, fig1_query):
        counters = MatchCounters()
        validate(fig1_data, fig1_query, (0, 1, 2), (0, 2), 4, counters)
        assert counters.filtered == 1


class TestCertifyEmbedding:
    def test_fig1_embeddings_certified(self, fig1_data, fig1_query):
        assert certify_embedding(fig1_data, fig1_query, (0, 1, 2), (0, 2, 4))
        assert certify_embedding(fig1_data, fig1_query, (0, 1, 2), (1, 3, 5))

    def test_cross_branch_rejected(self, fig1_data, fig1_query):
        assert not certify_embedding(
            fig1_data, fig1_query, (0, 1, 2), (0, 2, 5)
        )

    def test_duplicate_data_edges_rejected(self):
        """Two distinct query edges can never map to one data edge."""
        query = Hypergraph(["A", "A", "A"], [{0, 1}, {1, 2}])
        data = Hypergraph(["A", "A"], [{0, 1}])
        assert not certify_embedding(data, query, (0, 1), (0, 0))


class TestMaskProfileEquivalence:
    """Algorithm 5 over per-step vertex bitmasks (the mask backends'
    fast path) must accept exactly the candidates the sorted-tuple path
    accepts — the step-set <-> bitmask encoding is bijective."""

    def _paths_agree(self, data, step_plan, vmap, candidate):
        from repro.core.candidates import vertex_step_tuples

        step_tuples = {
            v: tuple(sorted(steps)) for v, steps in vmap.items()
        }
        step_masks = {
            v: sum(1 << s for s in steps) for v, steps in vmap.items()
        }
        tuple_path = is_valid_expansion(
            data, step_plan, vmap, len(vmap), candidate,
            step_tuples=step_tuples,
        )
        mask_path = is_valid_expansion(
            data, step_plan, vmap, len(vmap), candidate,
            step_masks=step_masks,
        )
        assert tuple_path == mask_path
        return tuple_path

    def test_plan_carries_mask_key(self, fig1_query):
        plan = build_execution_plan(fig1_query, (0, 1, 2))
        for step_plan in plan.steps:
            assert len(step_plan.profile_mask_key) == len(step_plan.profile_key)
            # Entry-wise consistency: same label ids, mask == tuple bits.
            tuple_multiset = sorted(
                (label_id, sum(1 << s for s in steps))
                for label_id, steps in step_plan.profile_key
            )
            assert sorted(step_plan.profile_mask_key) == tuple_multiset

    def test_fig1_candidates_agree(self, fig1_data, fig1_query):
        plan = build_execution_plan(fig1_query, (0, 1, 2))
        for matched in ((0, 2), (1, 3)):
            vmap = vertex_step_map(fig1_data, matched)
            for candidate in range(fig1_data.num_edges):
                self._paths_agree(fig1_data, plan.steps[2], vmap, candidate)

    def test_random_instances_agree(self):
        import random

        from repro import HGMatch
        from repro.testing import make_random_instance

        rng = random.Random(555)
        trials = 0
        while trials < 10:
            instance = make_random_instance(rng)
            if instance is None:
                continue
            trials += 1
            data, query = instance
            engine = HGMatch(data)
            plan = engine.plan(query)
            stack = [()]
            while stack:
                matched = stack.pop()
                step_plan = plan.steps[len(matched)]
                vmap = vertex_step_map(data, matched)
                partition = engine.store.partition(step_plan.signature)
                if partition is not None:
                    for candidate in partition.edge_ids:
                        self._paths_agree(data, step_plan, vmap, candidate)
                for extended in engine.expand(plan, matched):
                    if len(extended) < plan.num_steps:
                        stack.append(extended)

    def test_engine_counts_agree_across_validation_paths(self):
        """Backend choice (and therefore validation path) never changes
        the count."""
        import random

        from repro import HGMatch
        from repro.testing import make_random_instance

        rng = random.Random(556)
        trials = 0
        while trials < 6:
            instance = make_random_instance(rng)
            if instance is None:
                continue
            trials += 1
            data, query = instance
            counts = {
                backend: HGMatch(data, index_backend=backend).count(query)
                for backend in ("merge", "bitset", "adaptive")
            }
            assert len(set(counts.values())) == 1, counts
