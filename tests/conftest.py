"""Shared fixtures: the paper's running example and small workloads.

The suite doubles as a backend matrix: ``REPRO_INDEX_BACKEND`` (merge /
bitset / adaptive) switches the default posting-list representation of
every store built without an explicit ``index_backend`` — CI runs the
whole tier-1 suite once per backend.  The env var is consumed at store
build time by :func:`repro.hypergraph.storage.default_index_backend`;
this conftest validates it up front so a typo fails the session
immediately instead of silently testing ``merge`` three times.
"""

from __future__ import annotations

import os
import random

import pytest

from repro import HGMatch, Hypergraph
from repro.hypergraph import INDEX_BACKENDS, default_index_backend


def pytest_configure(config):
    backend = os.environ.get("REPRO_INDEX_BACKEND")
    if backend and backend not in INDEX_BACKENDS:
        raise pytest.UsageError(
            f"REPRO_INDEX_BACKEND={backend!r} is not one of {INDEX_BACKENDS}"
        )


def pytest_report_header(config):
    return f"repro index backend: {default_index_backend()}"


@pytest.fixture
def fig1_data() -> Hypergraph:
    """The data hypergraph of the paper's Fig. 1b.

    Vertices v0..v6 labelled A C A A B C A; hyperedges (0-based ids):
    e0={v2,v4}, e1={v4,v6}, e2={v0,v1,v2}, e3={v3,v5,v6},
    e4={v0,v1,v4,v6}, e5={v2,v3,v4,v5}.
    """
    return Hypergraph(
        labels=["A", "C", "A", "A", "B", "C", "A"],
        edges=[{2, 4}, {4, 6}, {0, 1, 2}, {3, 5, 6}, {0, 1, 4, 6}, {2, 3, 4, 5}],
    )


@pytest.fixture
def fig1_query() -> Hypergraph:
    """The query hypergraph of Fig. 1a: u0..u4 labelled A C A A B with
    hyperedges {u2,u4}, {u0,u1,u2}, {u0,u1,u3,u4}."""
    return Hypergraph(
        labels=["A", "C", "A", "A", "B"],
        edges=[{2, 4}, {0, 1, 2}, {0, 1, 3, 4}],
    )


@pytest.fixture
def fig1_engine(fig1_data) -> HGMatch:
    return HGMatch(fig1_data)


@pytest.fixture
def small_rng() -> random.Random:
    return random.Random(20230612)


# make_random_instance moved to repro.testing: importing it from a
# conftest is ambiguous when benchmarks/conftest.py is also on sys.path.
