"""Shared fixtures: the paper's running example and small workloads."""

from __future__ import annotations

import random

import pytest

from repro import HGMatch, Hypergraph


@pytest.fixture
def fig1_data() -> Hypergraph:
    """The data hypergraph of the paper's Fig. 1b.

    Vertices v0..v6 labelled A C A A B C A; hyperedges (0-based ids):
    e0={v2,v4}, e1={v4,v6}, e2={v0,v1,v2}, e3={v3,v5,v6},
    e4={v0,v1,v4,v6}, e5={v2,v3,v4,v5}.
    """
    return Hypergraph(
        labels=["A", "C", "A", "A", "B", "C", "A"],
        edges=[{2, 4}, {4, 6}, {0, 1, 2}, {3, 5, 6}, {0, 1, 4, 6}, {2, 3, 4, 5}],
    )


@pytest.fixture
def fig1_query() -> Hypergraph:
    """The query hypergraph of Fig. 1a: u0..u4 labelled A C A A B with
    hyperedges {u2,u4}, {u0,u1,u2}, {u0,u1,u3,u4}."""
    return Hypergraph(
        labels=["A", "C", "A", "A", "B"],
        edges=[{2, 4}, {0, 1, 2}, {0, 1, 3, 4}],
    )


@pytest.fixture
def fig1_engine(fig1_data) -> HGMatch:
    return HGMatch(fig1_data)


@pytest.fixture
def small_rng() -> random.Random:
    return random.Random(20230612)


def make_random_instance(rng: random.Random, max_vertices: int = 16):
    """A (data, query) pair small enough for brute-force comparison.

    The query is a random-walk sub-hypergraph of the data, so at least
    one embedding always exists.  Returns None when sampling fails (the
    random data was too sparse), letting callers skip the trial.
    """
    from repro.hypergraph.generators import generate_hypergraph
    from repro.hypergraph.sampling import QuerySetting, sample_query

    data = generate_hypergraph(
        num_vertices=rng.randint(6, max_vertices),
        num_edges=rng.randint(4, 14),
        num_labels=rng.randint(1, 3),
        mean_arity=2.5,
        max_arity=4,
        rng=rng,
    )
    if data.num_edges < 2:
        return None
    setting = QuerySetting("t", rng.randint(2, 3), 2, 12)
    try:
        query = sample_query(data, setting, rng, max_attempts=60)
    except Exception:
        return None
    return data, query
