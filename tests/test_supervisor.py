"""Worker supervision: restarts under a budget, graceful degradation.

The supervisor's contract: a killed worker is restarted under the
jittered-backoff retry policy (never inline — the poll after the
backoff performs it), each slot's restart budget bounds the attempts,
an exhausted slot degrades the pool instead of failing it, and only a
pool with *zero* live workers and zero budget anywhere is an error.
The restarted pool must serve jobs with counts bit-identical to the
original — restarts rebuild shards from the same pure function.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import HGMatch
from repro.errors import SchedulerError
from repro.parallel import (
    NetShardExecutor,
    WorkerRegistry,
    WorkerSupervisor,
)
from repro.parallel.tasks import RetryPolicy
from repro.testing import make_random_instance

#: Tight backoff so tests converge fast but still exercise the
#: schedule-then-restart split.
FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.05, max_delay=0.2)


@pytest.fixture(scope="module")
def instance():
    rng = random.Random(987)
    while True:
        candidate = make_random_instance(rng)
        if candidate is not None:
            return candidate


def _poll_until_restart(supervisor, timeout=15.0):
    deadline = time.monotonic() + timeout
    restarts = 0
    while restarts == 0 and time.monotonic() < deadline:
        restarts = supervisor.poll()
        time.sleep(0.02)
    return restarts


def test_requires_start_and_validates_budget(instance):
    data, _ = instance
    with pytest.raises(SchedulerError, match="restart_budget"):
        WorkerSupervisor(data, 1, restart_budget=-1)
    supervisor = WorkerSupervisor(data, 1)
    with pytest.raises(SchedulerError, match="start"):
        supervisor.poll()
    with pytest.raises(SchedulerError, match="start"):
        supervisor.status()


def test_restart_restores_parity(instance):
    """Kill a supervised worker; the supervisor restarts it within the
    budget and the restarted pool serves bit-identical counts."""
    data, query = instance
    engine = HGMatch(data, index_backend="bitset")
    supervisor = WorkerSupervisor(
        data, 2, index_backend="bitset", retry=FAST_RETRY,
    )
    with supervisor:
        expected = engine.count(query)
        supervisor.cluster.kill_member(0)
        assert supervisor.live_count() == 1
        # First poll only *schedules* (jittered backoff, no restart).
        assert supervisor.poll() == 0
        status = {
            (s.shard_id, s.replica_id): s for s in supervisor.status()
        }
        assert status[(0, 0)].state == "backoff"
        assert status[(1, 0)].state == "running"
        assert _poll_until_restart(supervisor) == 1
        assert supervisor.live_count() == 2
        status = {
            (s.shard_id, s.replica_id): s for s in supervisor.status()
        }
        assert status[(0, 0)].state == "running"
        assert status[(0, 0)].restarts == 1
        executor = NetShardExecutor(
            addresses=supervisor.addresses, index_backend="bitset",
        )
        try:
            assert executor.run(engine, query).embeddings == expected
        finally:
            executor.close()
    engine.close()


def test_budget_exhaustion_degrades_not_fails(instance):
    """A slot that keeps dying runs out of budget and is abandoned;
    with the other shard's worker alive, poll() keeps succeeding —
    graceful degradation, not an error."""
    data, _query = instance
    supervisor = WorkerSupervisor(
        data, 2, index_backend="bitset",
        restart_budget=1, retry=FAST_RETRY,
    )
    with supervisor:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status = {
                (s.shard_id, s.replica_id): s
                for s in supervisor.status()
            }
            if status[(0, 0)].state == "exhausted":
                break
            # Keep killing shard 0's worker the moment it is up.
            index = 0  # shard 0 replica 0 in the flat layout
            if supervisor.cluster.processes[index].is_alive():
                supervisor.cluster.kill_member(0)
            supervisor.poll()
            time.sleep(0.02)
        status = {
            (s.shard_id, s.replica_id): s for s in supervisor.status()
        }
        assert status[(0, 0)].state == "exhausted"
        assert status[(0, 0)].restarts == 1
        assert not status[(0, 0)].alive
        # Degraded but servable: polling is not an error.
        assert supervisor.poll() == 0
        assert supervisor.live_count() == 1


def test_unservable_pool_raises(instance):
    """Zero live workers + zero budget anywhere = a clean error."""
    data, _query = instance
    supervisor = WorkerSupervisor(
        data, 1, index_backend="bitset",
        restart_budget=0, retry=FAST_RETRY,
    )
    with supervisor:
        supervisor.cluster.kill_member(0)
        with pytest.raises(SchedulerError, match="restart budget"):
            supervisor.poll()


def test_supervised_restart_reannounces(instance):
    """With announce wired, a restarted worker re-registers with the
    registry at its fresh port — coordinators discover the restart
    without the supervisor telling them anything."""
    data, _query = instance
    with WorkerRegistry(
        heartbeat_interval=0.1, miss_budget=2
    ) as registry:
        supervisor = WorkerSupervisor(
            data, 2, index_backend="bitset", retry=FAST_RETRY,
            announce=registry.address, heartbeat_interval=0.1,
        )
        with supervisor:
            registry.wait_for(2, 1, timeout=15.0)
            old_address = registry.record(0, 0).address
            supervisor.cluster.kill_member(0)
            assert _poll_until_restart(supervisor) == 1
            deadline = time.monotonic() + 10.0
            new_address = None
            while time.monotonic() < deadline:
                record = registry.record(0, 0)
                if (
                    record is not None
                    and record.address != old_address
                ):
                    new_address = record.address
                    break
                time.sleep(0.05)
            assert new_address is not None
            assert new_address == supervisor.addresses[0]
