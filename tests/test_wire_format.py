"""Property tests for the candidate-set wire format.

``CandidateSet.from_bytes(to_bytes(s))`` must preserve membership and
cardinality for all three representations — tuples, row bitmasks and
roaring-style chunk maps — including empty sets, single-chunk extremes
and the ``row_offset`` shift that moves a shard-local payload into the
global row space.
"""

from __future__ import annotations

import random

import pytest

from repro.core.candidates import (
    ChunkCandidates,
    EMPTY_CANDIDATES,
    MaskCandidates,
    TupleCandidates,
    candidate_set_from_bytes,
    compose_candidate_sets,
)
from repro.hypergraph import (
    AdaptiveHyperedgeIndex,
    BitsetHyperedgeIndex,
    CHUNK_BITS,
    chunks_from_rows,
)

CHUNK_SIZE = 1 << CHUNK_BITS


def make_bitset_index(num_rows: int) -> BitsetHyperedgeIndex:
    """A bitset index whose row ``r`` maps to edge id ``10 * r`` (so the
    row/edge distinction can't silently cancel out)."""
    return BitsetHyperedgeIndex(
        tuple(10 * row for row in range(num_rows)), {}
    )


def make_adaptive_index(num_rows: int) -> AdaptiveHyperedgeIndex:
    return AdaptiveHyperedgeIndex(
        tuple(10 * row for row in range(num_rows)), {}
    )


def random_rows(rng: random.Random, num_rows: int) -> list:
    count = rng.randint(0, min(num_rows, 64))
    return sorted(rng.sample(range(num_rows), count))


class TestTuplePayloads:
    def test_round_trip_preserves_membership(self):
        rng = random.Random(7)
        for _ in range(50):
            edges = tuple(sorted(rng.sample(range(100_000), rng.randint(0, 40))))
            restored = candidate_set_from_bytes(TupleCandidates(edges).to_bytes())
            assert restored.to_tuple() == edges
            assert len(restored) == len(edges)

    def test_empty_tuple(self):
        restored = candidate_set_from_bytes(EMPTY_CANDIDATES.to_bytes())
        assert restored.to_tuple() == ()
        assert not restored

    def test_row_offset_is_ignored(self):
        # Edge ids are global; only row payloads translate.
        edges = (3, 17, 92)
        assert (
            TupleCandidates(edges).to_bytes(row_offset=5)
            == TupleCandidates(edges).to_bytes()
        )


class TestMaskPayloads:
    @pytest.mark.parametrize("num_rows", [1, 7, 64, 300])
    def test_round_trip_preserves_membership(self, num_rows):
        rng = random.Random(num_rows)
        index = make_bitset_index(num_rows)
        for _ in range(30):
            rows = random_rows(rng, num_rows)
            mask = sum(1 << row for row in rows)
            payload = MaskCandidates(index, mask).to_bytes()
            restored = candidate_set_from_bytes(payload, index)
            assert isinstance(restored, MaskCandidates)
            assert restored.to_tuple() == tuple(10 * row for row in rows)
            assert len(restored) == len(rows)

    def test_empty_mask(self):
        index = make_bitset_index(8)
        restored = candidate_set_from_bytes(
            MaskCandidates(index, 0).to_bytes(), index
        )
        assert restored.to_tuple() == ()
        assert len(restored) == 0

    def test_requires_index(self):
        payload = MaskCandidates(make_bitset_index(4), 0b1011).to_bytes()
        with pytest.raises(ValueError):
            candidate_set_from_bytes(payload)

    def test_row_offset_shifts_into_global_space(self):
        # A shard owning global rows 100..103 encodes local mask 0b1011.
        shard_index = make_bitset_index(4)
        global_index = make_bitset_index(200)
        payload = MaskCandidates(shard_index, 0b1011).to_bytes(row_offset=100)
        restored = candidate_set_from_bytes(payload, global_index)
        assert restored.to_tuple() == (1000, 1010, 1030)

    def test_payload_size_independent_of_row_offset(self):
        # The offset travels as a fixed header field, so a shard deep in
        # a huge partition pays for its survivor span, not its position.
        index = make_bitset_index(4)
        near = MaskCandidates(index, 0b1011).to_bytes(row_offset=0)
        far = MaskCandidates(index, 0b1011).to_bytes(row_offset=750_000)
        assert len(far) == len(near)

    def test_mask_payload_normalises_to_adaptive_reader(self):
        # A single-chunk shard may ship a bare mask even under the
        # adaptive backend; the reader re-chunks it.
        adaptive = make_adaptive_index(3 * CHUNK_SIZE)
        rows = [5, CHUNK_SIZE + 2, 2 * CHUNK_SIZE + 9]
        mask = sum(1 << row for row in rows)
        restored = candidate_set_from_bytes(
            MaskCandidates(make_bitset_index(4), mask).to_bytes(), adaptive
        )
        assert isinstance(restored, ChunkCandidates)
        assert restored.to_tuple() == tuple(10 * row for row in rows)


class TestChunkPayloads:
    @pytest.mark.parametrize(
        "num_rows", [1, CHUNK_SIZE - 1, CHUNK_SIZE, CHUNK_SIZE + 1, 3 * CHUNK_SIZE]
    )
    def test_round_trip_preserves_membership(self, num_rows):
        rng = random.Random(num_rows % 97)
        index = make_adaptive_index(num_rows)
        for _ in range(20):
            rows = random_rows(rng, num_rows)
            chunks = chunks_from_rows(rows)
            payload = ChunkCandidates(index, chunks).to_bytes()
            restored = candidate_set_from_bytes(payload, index)
            assert restored.to_tuple() == tuple(10 * row for row in rows)
            assert len(restored) == len(rows)

    def test_single_chunk_extremes(self):
        # First offset, last offset, and a full chunk — the container
        # boundary cases.
        index = make_adaptive_index(2 * CHUNK_SIZE)
        for rows in (
            [0],
            [CHUNK_SIZE - 1],
            [0, CHUNK_SIZE - 1],
            list(range(CHUNK_SIZE)),
        ):
            chunks = chunks_from_rows(rows)
            restored = candidate_set_from_bytes(
                ChunkCandidates(index, chunks).to_bytes(), index
            )
            assert restored.to_tuple() == tuple(10 * row for row in rows)

    def test_empty_chunk_map(self):
        index = make_adaptive_index(16)
        restored = candidate_set_from_bytes(
            ChunkCandidates(index, {}).to_bytes(), index
        )
        assert restored.to_tuple() == ()
        assert len(restored) == 0

    def test_dense_and_sparse_containers_round_trip(self):
        index = make_adaptive_index(CHUNK_SIZE)
        # Sparse (array container) and dense (bitmask container) chunks
        # in one payload.
        rows = [1, 3] + list(range(100, 160))
        chunks = chunks_from_rows(rows)
        restored = candidate_set_from_bytes(
            ChunkCandidates(index, chunks).to_bytes(), index
        )
        assert restored.to_tuple() == tuple(10 * row for row in rows)

    def test_row_offset_crossing_chunk_boundary(self):
        # Shifting by a non-chunk-aligned offset splits containers
        # across chunk boundaries; membership must survive.
        shard_index = make_adaptive_index(64)
        global_index = make_adaptive_index(2 * CHUNK_SIZE)
        rows = [0, 10, 63]
        offset = CHUNK_SIZE - 32  # rows straddle the chunk boundary
        payload = ChunkCandidates(
            shard_index, chunks_from_rows(rows)
        ).to_bytes(row_offset=offset)
        restored = candidate_set_from_bytes(payload, global_index)
        assert restored.to_tuple() == tuple(10 * (row + offset) for row in rows)

    def test_chunk_payload_normalises_to_bitset_reader(self):
        bitset = make_bitset_index(CHUNK_SIZE + 50)
        rows = [3, CHUNK_SIZE + 7]
        payload = ChunkCandidates(
            make_adaptive_index(2 * CHUNK_SIZE), chunks_from_rows(rows)
        ).to_bytes()
        restored = candidate_set_from_bytes(payload, bitset)
        assert isinstance(restored, MaskCandidates)
        assert restored.to_tuple() == tuple(10 * row for row in rows)


class TestCompose:
    def test_disjoint_shard_masks_compose_to_union(self):
        index = make_bitset_index(40)
        parts = [
            MaskCandidates(index, 0b1010),
            MaskCandidates(index, 0b0100 << 10),
            MaskCandidates(index, 1 << 39),
        ]
        composed = compose_candidate_sets(parts)
        expected = tuple(
            sorted(edge for part in parts for edge in part.to_tuple())
        )
        assert composed.to_tuple() == expected

    def test_compose_empty_and_single(self):
        index = make_bitset_index(8)
        assert compose_candidate_sets([]) is EMPTY_CANDIDATES
        assert (
            compose_candidate_sets([MaskCandidates(index, 0)])
            is EMPTY_CANDIDATES
        )
        only = MaskCandidates(index, 0b11)
        assert compose_candidate_sets([MaskCandidates(index, 0), only]) is only

    def test_compose_chunk_maps(self):
        index = make_adaptive_index(3 * CHUNK_SIZE)
        first = ChunkCandidates(index, chunks_from_rows([1, 2, 3]))
        second = ChunkCandidates(
            index, chunks_from_rows([CHUNK_SIZE + 5, 2 * CHUNK_SIZE])
        )
        composed = compose_candidate_sets([first, second])
        assert composed.to_tuple() == tuple(
            10 * row for row in (1, 2, 3, CHUNK_SIZE + 5, 2 * CHUNK_SIZE)
        )

    def test_compose_tuples(self):
        first = TupleCandidates((1, 5))
        second = TupleCandidates((7, 9))
        assert compose_candidate_sets([second, first]).to_tuple() == (1, 5, 7, 9)

    def test_compose_mixed_representations_falls_back(self):
        index = make_bitset_index(8)
        composed = compose_candidate_sets(
            [MaskCandidates(index, 0b1), TupleCandidates((70,))]
        )
        assert composed.to_tuple() == (0, 70)
