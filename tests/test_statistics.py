"""Unit tests for dataset statistics (Table II columns)."""

from __future__ import annotations

from repro.hypergraph import PartitionedStore, dataset_statistics, format_bytes
from repro.hypergraph.statistics import (
    BYTES_PER_ENTRY,
    estimate_graph_bytes,
    estimate_index_bytes,
    graph_size_entries,
)


class TestStatistics:
    def test_fig1_row(self, fig1_data):
        stats = dataset_statistics("fig1", fig1_data)
        assert stats.num_vertices == 7
        assert stats.num_edges == 6
        assert stats.num_labels == 3
        assert stats.max_arity == 4
        assert stats.average_arity == 3.0
        assert stats.num_partitions == 3

    def test_graph_entries_is_sum_of_arities(self, fig1_data):
        assert graph_size_entries(fig1_data) == 18
        assert estimate_graph_bytes(fig1_data) == 18 * BYTES_PER_ENTRY

    def test_index_size_similar_to_graph_size(self, fig1_data):
        """Exp-1's observation: the inverted index is the same asymptotic
        size as the hyperedge tables themselves."""
        store = PartitionedStore(fig1_data)
        assert estimate_index_bytes(store) == estimate_graph_bytes(fig1_data)

    def test_store_reuse(self, fig1_data):
        store = PartitionedStore(fig1_data)
        stats = dataset_statistics("fig1", fig1_data, store)
        assert stats.index_bytes == estimate_index_bytes(store)

    def test_as_row_keys(self, fig1_data):
        row = dataset_statistics("fig1", fig1_data).as_row()
        assert row["dataset"] == "fig1"
        assert row["|V|"] == 7
        assert "index_size" in row


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(100) == "100B"

    def test_kilobytes(self):
        assert format_bytes(2048) == "2.0KB"

    def test_megabytes(self):
        assert format_bytes(3 * 1024**2) == "3.0MB"

    def test_gigabytes(self):
        assert format_bytes(5 * 1024**3) == "5.0GB"
