"""Unit tests for the random-walk query sampler (Section VII-A)."""

from __future__ import annotations

import random

import pytest

from repro import HGMatch, Hypergraph
from repro.errors import QueryError
from repro.hypergraph.generators import generate_hypergraph
from repro.hypergraph.sampling import (
    PAPER_QUERY_SETTINGS,
    QuerySetting,
    query_setting,
    sample_queries,
    sample_query,
)


@pytest.fixture(scope="module")
def medium_data():
    return generate_hypergraph(150, 250, 4, 3.0, 7, random.Random(11))


class TestSettings:
    def test_table3_settings(self):
        by_name = {setting.name: setting for setting in PAPER_QUERY_SETTINGS}
        assert by_name["q2"] == QuerySetting("q2", 2, 5, 15)
        assert by_name["q3"] == QuerySetting("q3", 3, 10, 20)
        assert by_name["q4"] == QuerySetting("q4", 4, 10, 30)
        assert by_name["q6"] == QuerySetting("q6", 6, 15, 35)

    def test_lookup_by_name(self):
        assert query_setting("q4").num_edges == 4

    def test_unknown_setting_raises(self):
        with pytest.raises(QueryError):
            query_setting("q9")


class TestSampling:
    def test_query_respects_setting(self, medium_data):
        rng = random.Random(12)
        setting = query_setting("q3")
        query = sample_query(medium_data, setting, rng)
        assert query.num_edges == 3
        assert setting.min_vertices <= query.num_vertices <= setting.max_vertices

    def test_query_is_connected(self, medium_data):
        rng = random.Random(13)
        for name in ("q2", "q3", "q4"):
            query = sample_query(medium_data, query_setting(name), rng)
            assert query.is_connected()

    def test_query_has_at_least_one_embedding(self, medium_data):
        """The defining property of the paper's workload: queries are
        sub-hypergraphs of the data, so matching always succeeds."""
        rng = random.Random(14)
        engine = HGMatch(medium_data)
        for _ in range(5):
            query = sample_query(medium_data, query_setting("q2"), rng)
            assert engine.count(query) >= 1

    def test_sampling_empty_data_raises(self):
        with pytest.raises(QueryError):
            sample_query(
                Hypergraph(["A"], []), query_setting("q2"), random.Random(0)
            )

    def test_impossible_bounds_raise(self, medium_data):
        setting = QuerySetting("impossible", 2, 400, 500)
        with pytest.raises(QueryError):
            sample_query(medium_data, setting, random.Random(0), max_attempts=20)

    def test_sample_queries_count(self, medium_data):
        queries = sample_queries(
            medium_data, query_setting("q2"), 6, random.Random(15)
        )
        assert len(queries) == 6

    def test_sample_queries_gives_up_gracefully(self, medium_data):
        setting = QuerySetting("impossible", 2, 400, 500)
        queries = sample_queries(
            medium_data, setting, 4, random.Random(16), max_attempts_each=5
        )
        assert queries == []
