"""Integration + property tests: every engine agrees with brute force.

This is the load-bearing correctness test of the reproduction: on
randomised (data, query) instances, HGMatch (sequential, strict, BFS,
threaded, simulated), the dataflow layer, and all four baselines must
produce the identical set of hyperedge-level embeddings — and the
vertex-level counts must also coincide.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import HGMatch
from repro.baselines import BASELINE_NAMES, brute_force, make_baseline
from repro.dataflow import run_query
from repro.parallel import SimulatedExecutor, ThreadedExecutor

from repro.testing import make_random_instance


def _skip_if_none(instance):
    if instance is None:
        pytest.skip("sampling failed for this seed")
    return instance


class TestRandomisedEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_all_engines_agree(self, seed):
        rng = random.Random(1000 + seed)
        instance = _skip_if_none(make_random_instance(rng))
        data, query = instance

        reference = brute_force(data, query)
        engine = HGMatch(data)

        hgmatch_tuples = {e.canonical() for e in engine.match(query, strict=True)}
        assert hgmatch_tuples == reference.hyperedge_tuples

        assert engine.count_bfs(query) == len(reference.hyperedge_tuples)
        assert run_query(engine, query) == len(reference.hyperedge_tuples)
        assert (
            ThreadedExecutor(3).run(engine, query).embeddings
            == len(reference.hyperedge_tuples)
        )
        assert (
            SimulatedExecutor(3).run(engine, query).embeddings
            == len(reference.hyperedge_tuples)
        )

        for name in BASELINE_NAMES:
            matcher = make_baseline(name, data)
            assert matcher.hyperedge_embeddings(query) == reference.hyperedge_tuples, name
            assert matcher.count(query) == reference.vertex_embeddings, name

        assert engine.count_vertex_embeddings(query) == reference.vertex_embeddings


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000))
def test_hgmatch_matches_brute_force_property(seed):
    """Hypothesis sweep: HGMatch (with strict certification) equals the
    unpruned reference on arbitrary random instances."""
    rng = random.Random(seed)
    instance = make_random_instance(rng, max_vertices=12)
    if instance is None:
        return
    data, query = instance
    reference = brute_force(data, query)
    engine = HGMatch(data)
    found = {e.canonical() for e in engine.match(query, strict=True)}
    assert found == reference.hyperedge_tuples


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000), workers=st.integers(2, 6))
def test_parallel_equals_sequential_property(seed, workers):
    """Hypothesis sweep: the simulated executor is exact for any worker
    count (same task tree, virtual time only)."""
    rng = random.Random(seed)
    instance = make_random_instance(rng, max_vertices=12)
    if instance is None:
        return
    data, query = instance
    engine = HGMatch(data)
    expected = engine.count(query)
    assert SimulatedExecutor(workers).run(engine, query).embeddings == expected


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 10_000))
def test_matching_order_invariance_property(seed):
    """The embedding set is independent of the (connected) matching order."""
    from itertools import permutations

    from repro.core.ordering import is_connected_order

    rng = random.Random(seed)
    instance = make_random_instance(rng, max_vertices=12)
    if instance is None:
        return
    data, query = instance
    engine = HGMatch(data)
    baseline = {e.canonical() for e in engine.match(query)}
    for order in permutations(range(query.num_edges)):
        if not is_connected_order(query, order):
            continue
        found = {e.canonical() for e in engine.match(query, order=order)}
        assert found == baseline
