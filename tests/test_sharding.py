"""The sharded store: row-range slicing and shard-local Algorithm 4.

Pins the invariant the multiprocess executor relies on: a signature
partition's shard slices concatenate back to the global partition, and
running candidate generation per shard then composing the shard-local
results (through the wire format, in global row coordinates) yields
exactly the global candidate set — Algorithm 4 distributes over the
row-disjoint split.
"""

from __future__ import annotations

import random

import pytest

from repro import HGMatch
from repro.core.candidates import (
    candidate_set_from_bytes,
    compose_candidate_sets,
    generate_candidate_set,
    generate_candidates,
    vertex_step_map,
)
from repro.hypergraph import (
    INDEX_BACKENDS,
    PartitionedStore,
    ShardedStore,
    StoreShard,
    shard_ranges,
)
from repro.testing import make_random_instance


class TestShardRanges:
    def test_balanced_contiguous_cover(self):
        for num_rows in (0, 1, 5, 10, 97):
            for num_shards in (1, 2, 3, 4, 7):
                ranges = shard_ranges(num_rows, num_shards)
                assert len(ranges) == num_shards
                assert ranges[0][0] == 0
                assert ranges[-1][1] == num_rows
                for (_, high), (low, _) in zip(ranges, ranges[1:]):
                    assert high == low  # contiguous, no gaps
                sizes = [high - low for low, high in ranges]
                assert max(sizes) - min(sizes) <= 1  # balanced

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_ranges(10, 0)


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
class TestStoreShard:
    def test_slices_concatenate_to_global_partition(self, fig1_data, backend):
        full = PartitionedStore(fig1_data, index_backend=backend)
        sharded = ShardedStore(fig1_data, 3, index_backend=backend)
        for signature, partition in full.partitions.items():
            concatenated = ()
            for shard in sharded:
                local = shard.partition(signature)
                if local is None:
                    continue
                assert shard.row_base(signature) == len(concatenated)
                concatenated += local.edge_ids
            assert concatenated == partition.edge_ids

    def test_shard_postings_are_row_restrictions(self, fig1_data, backend):
        full = PartitionedStore(fig1_data, index_backend=backend)
        sharded = ShardedStore(fig1_data, 2, index_backend=backend)
        for signature, partition in full.partitions.items():
            for shard in sharded:
                local = shard.partition(signature)
                if local is None:
                    continue
                owned = set(local.edge_ids)
                for vertex in partition.index.vertices():
                    expected = tuple(
                        e for e in partition.incident_edges(vertex) if e in owned
                    )
                    assert local.incident_edges(vertex) == expected

    def test_index_size_splits_across_shards(self, fig1_data, backend):
        full = PartitionedStore(fig1_data, index_backend=backend)
        sharded = ShardedStore(fig1_data, 4, index_backend=backend)
        assert (
            sum(shard.index_size_entries() for shard in sharded)
            == full.index_size_entries()
        )

    def test_more_shards_than_rows(self, fig1_data, backend):
        # Every partition of the Fig. 1 graph has a single row, so most
        # shards own nothing — and say so via None partitions.
        sharded = ShardedStore(fig1_data, 8, index_backend=backend)
        for signature in sharded.signatures():
            owners = [
                shard
                for shard in sharded
                if shard.partition(signature) is not None
            ]
            assert owners  # at least one shard owns each signature
            total = sum(s.cardinality(signature) for s in owners)
            assert total >= 1

    def test_build_shard_validates_shard_id(self, fig1_data, backend):
        with pytest.raises(ValueError):
            StoreShard.build(fig1_data, 3, 3, index_backend=backend)


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_shard_candidates_compose_to_global(backend):
    """Per-shard Algorithm 4, shipped through the wire format and
    composed engine-side, equals the global candidate set on every probe
    of random enumerations."""
    rng = random.Random(20260728)
    trials = 0
    while trials < 12:
        instance = make_random_instance(rng)
        if instance is None:
            continue
        trials += 1
        data, query = instance
        engine = HGMatch(data, index_backend=backend)
        num_shards = rng.choice((2, 3, 4))
        sharded = ShardedStore(data, num_shards, index_backend=backend)
        plan = engine.plan(query)
        stack = [()]
        while stack:
            matched = stack.pop()
            step_plan = plan.steps[len(matched)]
            partition = engine.store.partition(step_plan.signature)
            vmap = vertex_step_map(data, matched)
            expected = generate_candidates(
                data, partition, step_plan, matched, vmap
            )
            shard_sets = []
            for shard in sharded:
                local = shard.partition(step_plan.signature)
                if local is None:
                    continue
                local_set = generate_candidate_set(
                    data, local, step_plan, matched, vmap
                )
                if not local_set:
                    continue
                payload = local_set.to_bytes(
                    row_offset=shard.row_base(step_plan.signature)
                )
                shard_sets.append(
                    candidate_set_from_bytes(
                        payload, None if partition is None else partition.index
                    )
                )
            composed = compose_candidate_sets(shard_sets)
            assert composed.to_tuple() == expected
            for extended in engine.expand(plan, matched):
                if len(extended) < plan.num_steps:
                    stack.append(extended)
