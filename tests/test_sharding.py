"""The sharded store: row-range slicing and shard-local Algorithm 4.

Pins the invariant the multiprocess executor relies on: a signature
partition's shard slices concatenate back to the global partition, and
running candidate generation per shard then composing the shard-local
results (through the wire format, in global row coordinates) yields
exactly the global candidate set — Algorithm 4 distributes over the
row-disjoint split.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro import HGMatch
from repro.core.candidates import (
    CandidateAccumulator,
    candidate_set_from_bytes,
    compose_candidate_sets,
    generate_candidate_set,
    generate_candidates,
    vertex_step_map,
)
from repro.hypergraph import (
    INDEX_BACKENDS,
    SHARDING_MODES,
    PartitionedStore,
    ShardedStore,
    StoreShard,
    balanced_range_table,
    build_range_table,
    range_table_label,
    range_table_slices,
    rebalance_range_table,
    shard_ranges,
    weighted_shard_ranges,
)
from repro.hypergraph.storage import group_edges_by_signature
from repro.testing import make_random_instance


def assert_exact_cover(ranges, num_rows):
    """Disjoint exact cover of ``0 .. num_rows - 1`` by contiguous
    ranges (empty ranges legal)."""
    assert ranges[0][0] == 0
    assert ranges[-1][1] == num_rows
    for (low, high), (next_low, next_high) in zip(ranges, ranges[1:]):
        assert low <= high
        assert high == next_low  # contiguous, no gaps, no overlaps
        assert next_low <= next_high


class TestShardRanges:
    def test_balanced_contiguous_cover(self):
        for num_rows in (0, 1, 5, 10, 97):
            for num_shards in (1, 2, 3, 4, 7):
                ranges = shard_ranges(num_rows, num_shards)
                assert len(ranges) == num_shards
                assert_exact_cover(ranges, num_rows)
                sizes = [high - low for low, high in ranges]
                assert max(sizes) - min(sizes) <= 1  # balanced

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_ranges(10, 0)


class TestWeightedShardRanges:
    def test_exact_cover_for_arbitrary_weights(self):
        """The core placement invariant: any non-negative weights —
        zeros, spikes, all-zero partitions — and any shard count
        (including more shards than rows) yield a disjoint exact
        cover."""
        rng = random.Random(20260728)
        for _ in range(400):
            num_shards = rng.randint(1, 9)
            num_rows = rng.randint(0, 50)
            weights = [
                rng.choice((0, 0, 1, 2, 3, 7, 100, 10**6))
                for _ in range(num_rows)
            ]
            capacities = None
            if rng.random() < 0.5:
                capacities = [
                    rng.choice((0, 0.25, 1.0, 3.0))
                    for _ in range(num_shards)
                ]
            ranges = weighted_shard_ranges(
                weights, num_shards, capacities=capacities
            )
            assert len(ranges) == num_shards
            assert_exact_cover(ranges, num_rows)

    def test_zero_mass_falls_back_to_uniform(self):
        assert weighted_shard_ranges((0, 0, 0, 0), 2) == shard_ranges(4, 2)
        assert weighted_shard_ranges((), 3) == shard_ranges(0, 3)
        assert weighted_shard_ranges(
            (1, 1), 2, capacities=(0, 0)
        ) == shard_ranges(2, 2)

    def test_weight_proportional_cut(self):
        # One heavy row outweighs four light ones: it gets its own range.
        assert weighted_shard_ranges((1, 1, 1, 1, 4), 2) == ((0, 4), (4, 5))

    def test_capacity_proportional_cut(self):
        ranges = weighted_shard_ranges((1,) * 8, 2, capacities=(3, 1))
        assert ranges == ((0, 6), (6, 8))

    def test_zero_capacity_yields_empty_range(self):
        ranges = weighted_shard_ranges((1,) * 6, 3, capacities=(0, 1, 1))
        assert ranges[0] == (0, 0)
        assert_exact_cover(ranges, 6)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            weighted_shard_ranges((1, 2), 0)
        with pytest.raises(ValueError):
            weighted_shard_ranges((1, -1), 2)
        with pytest.raises(ValueError):
            weighted_shard_ranges((1, 1), 2, capacities=(1,))
        with pytest.raises(ValueError):
            weighted_shard_ranges((1, 1), 2, capacities=(1, -2))


class TestRangeTables:
    def _random_grouped(self, rng):
        """A synthetic signature grouping with skewed shapes."""
        grouped = {}
        next_edge = 0
        for index in range(rng.randint(1, 8)):
            arity = rng.choice((1, 2, 3, 8, 64))
            rows = rng.randint(1, 20)
            signature = tuple(["L"] * arity + [index])
            grouped[signature] = list(range(next_edge, next_edge + rows))
            next_edge += rows
        return grouped

    def test_balanced_table_is_exact_cover(self):
        rng = random.Random(42)
        for _ in range(60):
            grouped = self._random_grouped(rng)
            num_shards = rng.randint(1, 6)
            table = balanced_range_table(grouped, num_shards)
            assert set(table) == set(grouped)
            for signature, ranges in table.items():
                assert len(ranges) == num_shards
                # Positional (range-order) concatenation covers exactly.
                ordered = sorted(ranges)
                assert_exact_cover(
                    tuple(ordered), len(grouped[signature])
                )

    def test_balanced_table_is_deterministic(self):
        rng = random.Random(7)
        grouped = self._random_grouped(rng)
        assert balanced_range_table(grouped, 4) == balanced_range_table(
            dict(reversed(list(grouped.items()))), 4
        )

    def test_rebalanced_table_preserves_cover_and_positions(self):
        rng = random.Random(99)
        for _ in range(60):
            grouped = self._random_grouped(rng)
            num_shards = rng.randint(1, 6)
            mode = rng.choice(SHARDING_MODES)
            table = build_range_table(grouped, num_shards, mode)
            loads = [rng.choice((0.0, 0.5, 1.0, 4.0)) for _ in range(num_shards)]
            recut = rebalance_range_table(grouped, table, loads)
            assert set(recut) == set(table)
            for signature, ranges in recut.items():
                ordered = sorted(ranges)
                assert_exact_cover(
                    tuple(ordered), len(grouped[signature])
                )
                # Positions hold: each shard keeps its rank along the
                # row axis, only boundaries move.
                before = sorted(
                    range(num_shards),
                    key=lambda s: (table[signature][s], s),
                )
                after = sorted(
                    range(num_shards),
                    key=lambda s: (ranges[s], s),
                )
                non_empty_before = [
                    s for s in before
                    if table[signature][s][0] < table[signature][s][1]
                ]
                non_empty_after = [
                    s for s in after if ranges[s][0] < ranges[s][1]
                ]
                # Any shard owning rows both before and after must keep
                # its relative order.
                common = set(non_empty_before) & set(non_empty_after)
                assert [
                    s for s in non_empty_before if s in common
                ] == [s for s in non_empty_after if s in common]

    def test_rebalance_moves_mass_off_the_hot_shard(self):
        grouped = {("A", "A"): list(range(100))}
        table = build_range_table(grouped, 4, "uniform")
        recut = rebalance_range_table(grouped, table, [4.0, 1.0, 1.0, 1.0])
        sizes = [high - low for low, high in recut[("A", "A")]]
        assert sizes[0] < 25  # the hot shard sheds rows
        assert sum(sizes) == 100

    def test_rebalance_noop_on_balanced_loads(self):
        grouped = {("A",): list(range(8)), ("B", "B"): list(range(8, 14))}
        table = build_range_table(grouped, 2, "uniform")
        assert rebalance_range_table(grouped, table, [0.0, 0.0]) == table

    def test_label_tracks_boundaries(self):
        grouped = {("A", "A"): list(range(10))}
        uniform = build_range_table(grouped, 2, "uniform")
        recut = rebalance_range_table(grouped, uniform, [3.0, 1.0])
        assert range_table_label(uniform, grouped) != range_table_label(
            recut, grouped
        )
        assert range_table_label(recut, grouped).startswith("rebalanced-")
        assert range_table_label(recut, grouped) == range_table_label(
            dict(recut), grouped
        )

    def test_slices_drop_empty_ranges(self):
        grouped = {("A",): list(range(2))}
        table = build_range_table(grouped, 4, "uniform")
        slices = range_table_slices(table, 4)
        assert slices[0] == {("A",): (0, 1)}
        assert slices[1] == {("A",): (1, 2)}
        assert slices[2] == {} and slices[3] == {}


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
class TestStoreShard:
    def test_slices_concatenate_to_global_partition(self, fig1_data, backend):
        full = PartitionedStore(fig1_data, index_backend=backend)
        sharded = ShardedStore(fig1_data, 3, index_backend=backend)
        for signature, partition in full.partitions.items():
            concatenated = ()
            for shard in sharded:
                local = shard.partition(signature)
                if local is None:
                    continue
                assert shard.row_base(signature) == len(concatenated)
                concatenated += local.edge_ids
            assert concatenated == partition.edge_ids

    def test_shard_postings_are_row_restrictions(self, fig1_data, backend):
        full = PartitionedStore(fig1_data, index_backend=backend)
        sharded = ShardedStore(fig1_data, 2, index_backend=backend)
        for signature, partition in full.partitions.items():
            for shard in sharded:
                local = shard.partition(signature)
                if local is None:
                    continue
                owned = set(local.edge_ids)
                for vertex in partition.index.vertices():
                    expected = tuple(
                        e for e in partition.incident_edges(vertex) if e in owned
                    )
                    assert local.incident_edges(vertex) == expected

    def test_index_size_splits_across_shards(self, fig1_data, backend):
        full = PartitionedStore(fig1_data, index_backend=backend)
        sharded = ShardedStore(fig1_data, 4, index_backend=backend)
        assert (
            sum(shard.index_size_entries() for shard in sharded)
            == full.index_size_entries()
        )

    def test_more_shards_than_rows(self, fig1_data, backend):
        # Every partition of the Fig. 1 graph has a single row, so most
        # shards own nothing — and say so via None partitions.
        sharded = ShardedStore(fig1_data, 8, index_backend=backend)
        for signature in sharded.signatures():
            owners = [
                shard
                for shard in sharded
                if shard.partition(signature) is not None
            ]
            assert owners  # at least one shard owns each signature
            total = sum(s.cardinality(signature) for s in owners)
            assert total >= 1

    def test_build_shard_validates_shard_id(self, fig1_data, backend):
        with pytest.raises(ValueError):
            StoreShard.build(fig1_data, 3, 3, index_backend=backend)


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
@pytest.mark.parametrize("sharding", SHARDING_MODES)
def test_shard_candidates_compose_to_global(backend, sharding):
    """Per-shard Algorithm 4, shipped through the wire format and
    composed engine-side, equals the global candidate set on every probe
    of random enumerations — under either placement mode, via both the
    barrier composition and the incremental accumulator, in any shard
    arrival order."""
    rng = random.Random(20260728)
    trials = 0
    while trials < 12:
        instance = make_random_instance(rng)
        if instance is None:
            continue
        trials += 1
        data, query = instance
        engine = HGMatch(data, index_backend=backend)
        num_shards = rng.choice((2, 3, 4))
        sharded = ShardedStore(
            data, num_shards, index_backend=backend, sharding=sharding
        )
        plan = engine.plan(query)
        stack = [()]
        while stack:
            matched = stack.pop()
            step_plan = plan.steps[len(matched)]
            partition = engine.store.partition(step_plan.signature)
            vmap = vertex_step_map(data, matched)
            expected = generate_candidates(
                data, partition, step_plan, matched, vmap
            )
            shard_sets = []
            for shard in sharded:
                local = shard.partition(step_plan.signature)
                if local is None:
                    continue
                local_set = generate_candidate_set(
                    data, local, step_plan, matched, vmap
                )
                if not local_set:
                    continue
                payload = local_set.to_bytes(
                    row_offset=shard.row_base(step_plan.signature)
                )
                shard_sets.append(
                    candidate_set_from_bytes(
                        payload, None if partition is None else partition.index
                    )
                )
            composed = compose_candidate_sets(shard_sets)
            assert composed.to_tuple() == expected
            # The streaming accumulator must agree for every arrival
            # order (the as-completed gather gives no ordering promise).
            shuffled = list(shard_sets)
            rng.shuffle(shuffled)
            accumulator = CandidateAccumulator()
            for shard_set in shuffled:
                accumulator.add(shard_set)
            assert accumulator.result().to_tuple() == expected
            for extended in engine.expand(plan, matched):
                if len(extended) < plan.num_steps:
                    stack.append(extended)


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_balanced_store_slices_concatenate_in_range_order(
    fig1_data, backend
):
    """Balanced placement permutes which shard owns which range, but
    range-order concatenation still reproduces every global partition
    and the row bases match the cut."""
    full = PartitionedStore(fig1_data, index_backend=backend)
    sharded = ShardedStore(
        fig1_data, 3, index_backend=backend, sharding="balanced"
    )
    for signature, partition in full.partitions.items():
        owners = [
            shard for shard in sharded
            if shard.partition(signature) is not None
        ]
        concatenated = ()
        for shard in sorted(owners, key=lambda s: s.row_base(signature)):
            assert shard.row_base(signature) == len(concatenated)
            concatenated += shard.partition(signature).edge_ids
        assert concatenated == partition.edge_ids
        assert sharded.range_table[signature] is not None
    assert sharded.sharding == "balanced"
    for shard in sharded:
        assert shard.sharding == "balanced"
        assert shard.describe().sharding == "balanced"


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_duplicated_keyed_streams_fold_exactly_once(backend):
    """The replication property: a reply stream that is shuffled AND
    duplicated (a replica's speculative twin answering the same level)
    folds to results bit-identical to the barrier composition when each
    contribution carries its shard id as the dedup key.  Without the
    key, duplicated tuple payloads would double their edges — the test
    would catch any executor that stops deduplicating."""
    rng = random.Random(20260807)
    trials = 0
    while trials < 8:
        instance = make_random_instance(rng)
        if instance is None:
            continue
        trials += 1
        data, query = instance
        engine = HGMatch(data, index_backend=backend)
        num_shards = rng.choice((2, 3, 4))
        sharded = ShardedStore(data, num_shards, index_backend=backend)
        plan = engine.plan(query)
        stack = [()]
        while stack:
            matched = stack.pop()
            step_plan = plan.steps[len(matched)]
            partition = engine.store.partition(step_plan.signature)
            vmap = vertex_step_map(data, matched)
            payloads = []
            for shard in sharded:
                local = shard.partition(step_plan.signature)
                if local is None:
                    continue
                local_set = generate_candidate_set(
                    data, local, step_plan, matched, vmap
                )
                if not local_set:
                    continue
                payloads.append((
                    shard.shard_id,
                    local_set.to_bytes(
                        row_offset=shard.row_base(step_plan.signature)
                    ),
                ))
            index = None if partition is None else partition.index
            barrier = compose_candidate_sets([
                candidate_set_from_bytes(payload, index)
                for _, payload in payloads
            ])
            # Duplicate each reply 1-3x (fresh decode per copy — the
            # replicas' replies are byte-identical, never the same
            # object), then shuffle the whole stream.
            stream = []
            for shard_id, payload in payloads:
                for _ in range(rng.randint(1, 3)):
                    stream.append((shard_id, payload))
            rng.shuffle(stream)
            accumulator = CandidateAccumulator()
            for shard_id, payload in stream:
                accumulator.add(
                    candidate_set_from_bytes(payload, index), key=shard_id
                )
            assert accumulator.result().to_tuple() == barrier.to_tuple()
            for extended in engine.expand(plan, matched):
                if len(extended) < plan.num_steps:
                    stack.append(extended)


class TestReplicaIdentity:
    def test_descriptor_replica_fields_round_trip(self, fig1_data):
        from repro.hypergraph import ShardedStore
        from repro.hypergraph.sharding import ShardDescriptor

        sharded = ShardedStore(fig1_data, 2)
        base = next(iter(sharded)).describe()
        assert (base.replica_id, base.num_replicas) == (0, 1)
        stamped = base.with_replica(1, 3)
        assert (stamped.replica_id, stamped.num_replicas) == (1, 3)
        # Identity never changes what the shard owns.
        assert stamped.shard_id == base.shard_id
        assert stamped.num_rows == base.num_rows
        parsed = ShardDescriptor.from_dict(dataclasses.asdict(stamped))
        assert parsed == stamped
        # Pre-replication peers omit the fields: default to 0 of 1.
        legacy = dataclasses.asdict(base)
        legacy.pop("replica_id", None)
        legacy.pop("num_replicas", None)
        parsed = ShardDescriptor.from_dict(legacy)
        assert (parsed.replica_id, parsed.num_replicas) == (0, 1)

    def test_with_replica_validates_arithmetic(self, fig1_data):
        from repro.hypergraph import ShardedStore

        descriptor = next(iter(ShardedStore(fig1_data, 2))).describe()
        with pytest.raises(ValueError, match="out of range"):
            descriptor.with_replica(2, 2)
        with pytest.raises(ValueError, match=">= 1"):
            descriptor.with_replica(0, 0)

    def test_replica_set_tracks_live_members(self):
        from repro.hypergraph import ReplicaSet

        replicas = ReplicaSet(3, 2)
        assert not replicas and len(replicas) == 0
        replicas.place(1, "b")
        replicas.place(0, "a")
        with pytest.raises(ValueError, match="already placed"):
            replicas.place(0, "usurper")
        with pytest.raises(ValueError, match="out of range"):
            replicas.place(2, "c")
        # Deterministic ascending order regardless of placement order.
        assert replicas.members() == [(0, "a"), (1, "b")]
        assert list(replicas) == ["a", "b"]
        replicas.remove(0)
        replicas.remove(0)  # idempotent
        assert replicas.get(0) is None and replicas.get(1) == "b"
        assert len(replicas) == 1 and bool(replicas)
        replicas.remove(1)
        assert not replicas  # zero live replicas: the fatal state
        with pytest.raises(ValueError):
            ReplicaSet(0, 0)
