"""Unit tests for the hypergraph data model (Definition III.1)."""

from __future__ import annotations

import pytest

from repro import Hypergraph, HypergraphBuilder
from repro.errors import HypergraphError


class TestConstruction:
    def test_basic_counts(self, fig1_data):
        assert fig1_data.num_vertices == 7
        assert fig1_data.num_edges == 6

    def test_labels_by_vertex(self, fig1_data):
        assert fig1_data.label(0) == "A"
        assert fig1_data.label(1) == "C"
        assert fig1_data.label(4) == "B"

    def test_edges_are_frozensets(self, fig1_data):
        assert fig1_data.edge(0) == frozenset({2, 4})
        assert isinstance(fig1_data.edge(0), frozenset)

    def test_duplicate_edges_removed(self):
        graph = Hypergraph(["A", "A", "A"], [{0, 1}, {1, 0}, {1, 2}])
        assert graph.num_edges == 2

    def test_duplicate_vertices_in_edge_collapsed(self):
        graph = Hypergraph(["A", "A"], [[0, 1, 1, 0]])
        assert graph.edge(0) == frozenset({0, 1})
        assert graph.arity(0) == 2

    def test_empty_edge_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph(["A"], [[]])

    def test_unknown_vertex_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph(["A"], [[0, 3]])

    def test_no_edges_is_valid(self):
        graph = Hypergraph(["A", "B"], [])
        assert graph.num_edges == 0
        assert graph.average_arity() == 0.0
        assert graph.max_arity() == 0


class TestIncidence:
    def test_incident_edges_sorted(self, fig1_data):
        assert fig1_data.incident_edges(4) == (0, 1, 4, 5)

    def test_degree(self, fig1_data):
        assert fig1_data.degree(4) == 4
        assert fig1_data.degree(5) == 2

    def test_arity(self, fig1_data):
        assert fig1_data.arity(0) == 2
        assert fig1_data.arity(4) == 4

    def test_incident_edges_with_arity(self, fig1_data):
        assert fig1_data.incident_edges_with_arity(4, 2) == (0, 1)
        assert fig1_data.incident_edges_with_arity(4, 4) == (4, 5)

    def test_average_and_max_arity(self, fig1_data):
        assert fig1_data.max_arity() == 4
        assert fig1_data.average_arity() == pytest.approx(18 / 6)


class TestAdjacency:
    def test_adjacent_vertices_excludes_self(self, fig1_data):
        neighbours = fig1_data.adjacent_vertices(2)
        assert 2 not in neighbours
        assert neighbours == frozenset({0, 1, 3, 4, 5})

    def test_adjacent_edges(self, fig1_data):
        assert fig1_data.adjacent_edges(0) == frozenset({1, 2, 4, 5})

    def test_edge_lookup(self, fig1_data):
        assert fig1_data.edge_id({4, 2}) == 0
        assert fig1_data.has_edge({0, 1, 2})
        assert not fig1_data.has_edge({0, 1})
        with pytest.raises(KeyError):
            fig1_data.edge_id({0, 1})


class TestConnectivity:
    def test_fig1_is_connected(self, fig1_data, fig1_query):
        assert fig1_data.is_connected()
        assert fig1_query.is_connected()

    def test_isolated_vertex_means_disconnected(self):
        graph = Hypergraph(["A", "A", "A"], [{0, 1}])
        assert not graph.is_connected()

    def test_two_components(self):
        graph = Hypergraph(["A"] * 4, [{0, 1}, {2, 3}])
        assert not graph.is_connected()

    def test_empty_graph_connected(self):
        assert Hypergraph([], []).is_connected()


class TestDerived:
    def test_induced_by_edges_renumbers(self, fig1_data):
        sub = fig1_data.induced_by_edges([0, 2])  # {v2,v4} and {v0,v1,v2}
        # Covered vertices v0,v1,v2,v4 are renumbered 0..3.
        assert sub.num_vertices == 4
        assert sub.num_edges == 2
        assert list(sub.labels) == ["A", "C", "A", "B"]
        assert sub.is_connected()

    def test_label_alphabet(self, fig1_data):
        assert fig1_data.label_alphabet() == frozenset({"A", "B", "C"})

    def test_equality_ignores_edge_order(self):
        first = Hypergraph(["A", "B"], [{0}, {0, 1}])
        second = Hypergraph(["A", "B"], [{0, 1}, {0}])
        assert first == second
        assert hash(first) == hash(second)

    def test_inequality_on_labels(self):
        first = Hypergraph(["A", "B"], [{0, 1}])
        second = Hypergraph(["B", "A"], [{0, 1}])
        assert first != second

    def test_repr_mentions_sizes(self, fig1_data):
        assert "|V|=7" in repr(fig1_data)
        assert "|E|=6" in repr(fig1_data)

    def test_iteration_and_len(self, fig1_data):
        assert len(fig1_data) == 6
        assert list(fig1_data)[0] == frozenset({2, 4})


class TestBuilder:
    def test_add_vertex_and_edge(self):
        builder = HypergraphBuilder()
        a = builder.add_vertex("A")
        b = builder.add_vertex("B")
        builder.add_edge([a, b])
        graph = builder.build()
        assert graph.num_vertices == 2
        assert graph.has_edge({a, b})

    def test_keyed_vertices_are_reused(self):
        builder = HypergraphBuilder()
        builder.add_edge_by_keys([("x", "A"), ("y", "B")])
        builder.add_edge_by_keys([("y", "B"), ("z", "A")])
        graph = builder.build()
        assert graph.num_vertices == 3
        assert graph.num_edges == 2

    def test_duplicate_key_rejected(self):
        builder = HypergraphBuilder()
        builder.add_vertex("A", key="x")
        with pytest.raises(HypergraphError):
            builder.add_vertex("B", key="x")

    def test_unknown_vertex_in_edge_rejected(self):
        builder = HypergraphBuilder()
        with pytest.raises(HypergraphError):
            builder.add_edge([5])

    def test_builder_counts(self):
        builder = HypergraphBuilder()
        builder.add_vertex("A")
        assert builder.num_vertices == 1
        assert builder.num_edges == 0
