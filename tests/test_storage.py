"""Unit tests for signature-partitioned storage (Section IV-B, Table I)."""

from __future__ import annotations

from repro.hypergraph import PartitionedStore


class TestPartitioning:
    def test_fig1_has_three_partitions(self, fig1_data):
        """Table I: partitions {A,B}, {A,A,C} and {A,A,B,C}."""
        store = PartitionedStore(fig1_data)
        assert store.num_partitions() == 3
        assert set(store.partitions) == {
            ("A", "B"),
            ("A", "A", "C"),
            ("A", "A", "B", "C"),
        }

    def test_partition_rows_match_table1(self, fig1_data):
        store = PartitionedStore(fig1_data)
        assert store.partition(("A", "B")).edge_ids == (0, 1)
        assert store.partition(("A", "A", "C")).edge_ids == (2, 3)
        assert store.partition(("A", "A", "B", "C")).edge_ids == (4, 5)

    def test_inverted_index_matches_table1(self, fig1_data):
        """Table I partition 1: v2->[e1], v4->[e1,e2], v6->[e2] (1-based)."""
        store = PartitionedStore(fig1_data)
        partition = store.partition(("A", "B"))
        assert partition.incident_edges(2) == (0,)
        assert partition.incident_edges(4) == (0, 1)
        assert partition.incident_edges(6) == (1,)
        assert partition.incident_edges(0) == ()

    def test_cardinality_lookup(self, fig1_data):
        store = PartitionedStore(fig1_data)
        assert store.cardinality(("A", "B")) == 2
        assert store.cardinality(("Z",)) == 0

    def test_partition_len_and_iter(self, fig1_data):
        store = PartitionedStore(fig1_data)
        partition = store.partition(("A", "A", "C"))
        assert len(partition) == 2
        assert list(partition) == [2, 3]

    def test_index_size_entries_is_sum_of_arities(self, fig1_data):
        store = PartitionedStore(fig1_data)
        assert store.index_size_entries() == sum(
            len(edge) for edge in fig1_data.edges
        )

    def test_graph_property(self, fig1_data):
        store = PartitionedStore(fig1_data)
        assert store.graph is fig1_data

    def test_missing_partition_returns_none(self, fig1_data):
        store = PartitionedStore(fig1_data)
        assert store.partition(("B", "B")) is None

    def test_empty_graph(self):
        from repro import Hypergraph

        store = PartitionedStore(Hypergraph([], []))
        assert store.num_partitions() == 0
        assert store.index_size_entries() == 0
