"""Tests for the binding-order multiway join engine."""

from __future__ import annotations

import pytest

from repro.joins import Atom, BinaryRelation, JoinExecutor, JoinQuery, plan_binding_order


@pytest.fixture
def edge_relation():
    """A small directed edge relation: a path 0→1→2→3 plus 1→3."""
    return BinaryRelation([(0, 1), (1, 2), (2, 3), (1, 3)])


class TestBinaryRelation:
    def test_forward_backward(self, edge_relation):
        assert edge_relation.forward(1) == [2, 3]
        assert edge_relation.backward(3) == [1, 2]
        assert edge_relation.forward(9) == []

    def test_contains(self, edge_relation):
        assert edge_relation.contains(0, 1)
        assert not edge_relation.contains(1, 0)

    def test_len(self, edge_relation):
        assert len(edge_relation) == 4


class TestJoinQuery:
    def test_candidate_list_arity_checked(self, edge_relation):
        with pytest.raises(ValueError):
            JoinQuery(2, [[0]], [])

    def test_path_join(self, edge_relation):
        """R(x,y) ⋈ R(y,z): paths of length two."""
        query = JoinQuery(
            3,
            [[0, 1, 2, 3]] * 3,
            [Atom(0, 1, edge_relation), Atom(1, 2, edge_relation)],
        )
        executor = JoinExecutor(query)
        assert executor.count() == 3  # 0-1-2, 0-1-3, 1-2-3

    def test_injectivity_group(self, edge_relation):
        """Without injectivity x and z may coincide; the relation here has
        no such pair, so add a back edge to create one."""
        relation = BinaryRelation([(0, 1), (1, 0)])
        atoms = [Atom(0, 1, relation), Atom(1, 2, relation)]
        free = JoinExecutor(JoinQuery(3, [[0, 1]] * 3, atoms))
        injective = JoinExecutor(
            JoinQuery(3, [[0, 1]] * 3, atoms, injective_groups=[[0, 1, 2]])
        )
        assert free.count() == 2   # 0-1-0 and 1-0-1
        assert injective.count() == 0

    def test_streaming_results(self, edge_relation):
        query = JoinQuery(
            2, [[0, 1, 2, 3]] * 2, [Atom(0, 1, edge_relation)]
        )
        seen = []
        JoinExecutor(query).count(on_result=seen.append)
        assert len(seen) == 4
        assert {(row[0], row[1]) for row in seen} == {
            (0, 1), (1, 2), (2, 3), (1, 3),
        }

    def test_custom_order_validated(self, edge_relation):
        query = JoinQuery(2, [[0]] * 2, [Atom(0, 1, edge_relation)])
        with pytest.raises(ValueError):
            JoinExecutor(query, order=[0, 0])

    def test_empty_candidates_yield_zero(self, edge_relation):
        query = JoinQuery(2, [[], [0]], [Atom(0, 1, edge_relation)])
        assert JoinExecutor(query).count() == 0


class TestBindingOrder:
    def test_starts_at_smallest_candidate_list(self, edge_relation):
        query = JoinQuery(
            3,
            [[0, 1, 2, 3], [7], [0, 1]],
            [Atom(0, 1, edge_relation), Atom(1, 2, edge_relation)],
        )
        order = plan_binding_order(query)
        assert order[0] == 1

    def test_stays_connected(self, edge_relation):
        query = JoinQuery(
            4,
            [[0], [0, 1], [0, 1, 2], [0, 1, 2, 3]],
            [
                Atom(0, 1, edge_relation),
                Atom(1, 2, edge_relation),
                Atom(2, 3, edge_relation),
            ],
        )
        order = plan_binding_order(query)
        bound = {order[0]}
        adjacency = {0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}
        for variable in order[1:]:
            assert adjacency[variable] & bound
            bound.add(variable)
