"""Tests for the baseline matching-order strategies."""

from __future__ import annotations

import random

from repro import Hypergraph
from repro.baselines.filters import ihs_candidates
from repro.baselines.ordering import bfs_order, core_forest_leaf_order, dag_order
from repro.hypergraph.generators import random_connected_hypergraph


def _assert_connected_order(query: Hypergraph, order):
    assert sorted(order) == list(range(query.num_vertices))
    seen = {order[0]}
    for vertex in order[1:]:
        assert query.adjacent_vertices(vertex) & seen, (
            f"vertex {vertex} not connected to the ordered prefix"
        )
        seen.add(vertex)


def _candidates_for(query, data):
    return ihs_candidates(query, data)


class TestOrderProperties:
    def test_all_strategies_produce_connected_permutations(self, fig1_data, fig1_query):
        candidates = _candidates_for(fig1_query, fig1_data)
        for strategy in (bfs_order, core_forest_leaf_order, dag_order):
            order = strategy(fig1_query, candidates)
            _assert_connected_order(fig1_query, order)

    def test_random_queries(self, fig1_data):
        rng = random.Random(9)
        for seed in range(8):
            query = random_connected_hypergraph(
                8, 5, 3, 4, random.Random(seed)
            )
            candidates = {
                u: list(range(3)) for u in range(query.num_vertices)
            }
            for strategy in (bfs_order, core_forest_leaf_order, dag_order):
                _assert_connected_order(query, strategy(query, candidates))
        del rng

    def test_bfs_starts_at_fewest_candidates(self, fig1_data, fig1_query):
        candidates = _candidates_for(fig1_query, fig1_data)
        order = bfs_order(fig1_query, candidates)
        fewest = min(
            range(fig1_query.num_vertices), key=lambda u: (len(candidates[u]), u)
        )
        assert order[0] == fewest


class TestCoreForestLeaf:
    def test_core_before_leaves(self):
        """A triangle-with-pendant query: the pendant (leaf) goes last."""
        query = Hypergraph(
            ["A"] * 4, [{0, 1}, {1, 2}, {0, 2}, {2, 3}]
        )
        candidates = {u: [0, 1, 2] for u in range(4)}
        order = core_forest_leaf_order(query, candidates)
        assert order[-1] == 3

    def test_pure_tree_query_still_ordered(self):
        query = Hypergraph(["A"] * 3, [{0, 1}, {1, 2}])
        candidates = {u: [0] for u in range(3)}
        order = core_forest_leaf_order(query, candidates)
        _assert_connected_order(query, order)


class TestDagOrder:
    def test_root_minimises_candidate_degree_ratio(self):
        query = Hypergraph(["A", "B", "A"], [{0, 1}, {1, 2}])
        candidates = {0: [0, 1, 2, 3], 1: [0], 2: [0, 1, 2, 3]}
        order = dag_order(query, candidates)
        assert order[0] == 1
