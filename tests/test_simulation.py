"""Tests for the discrete-event simulated executor (Exp-4/Exp-6 substrate)."""

from __future__ import annotations

import random

import pytest

from repro import HGMatch
from repro.errors import SchedulerError
from repro.hypergraph.generators import generate_hypergraph
from repro.hypergraph.sampling import query_setting, sample_query
from repro.parallel import CostModel, SimulatedExecutor, simulate_speedups


@pytest.fixture(scope="module")
def sim_instance():
    rng = random.Random(31)
    data = generate_hypergraph(120, 900, 2, 3.0, 6, rng)
    query = sample_query(data, query_setting("q3"), rng)
    engine = HGMatch(data)
    expected = engine.count(query)
    return engine, query, expected


class TestExactness:
    @pytest.mark.parametrize("workers", [1, 2, 4, 16])
    def test_simulated_count_is_exact(self, sim_instance, workers):
        engine, query, expected = sim_instance
        result = SimulatedExecutor(workers).run(engine, query)
        assert result.embeddings == expected

    def test_deterministic(self, sim_instance):
        engine, query, _ = sim_instance
        first = SimulatedExecutor(4, seed=5).run(engine, query)
        second = SimulatedExecutor(4, seed=5).run(engine, query)
        assert first.makespan == second.makespan
        assert first.total_steals == second.total_steals


class TestScalability:
    def test_speedup_grows_with_workers(self, sim_instance):
        engine, query, _ = sim_instance
        rows = simulate_speedups(engine, query, [1, 2, 4, 8])
        speedups = [row["speedup"] for row in rows]
        assert speedups[0] == pytest.approx(1.0)
        assert speedups[1] > 1.2
        assert speedups[2] > speedups[1]

    def test_makespan_never_increases_much_with_more_workers(self, sim_instance):
        engine, query, _ = sim_instance
        one = SimulatedExecutor(1).run(engine, query).makespan
        eight = SimulatedExecutor(8).run(engine, query).makespan
        assert eight <= one

    def test_numa_knee(self, sim_instance):
        """Workers beyond the physical-core count contribute at reduced
        efficiency, bending the speedup curve like the paper's Fig. 10."""
        engine, query, _ = sim_instance
        model = CostModel(physical_cores=4, numa_efficiency=0.5)
        rows = simulate_speedups(engine, query, [4, 8], cost_model=model)
        per_worker_4 = rows[0]["speedup"] / 4
        per_worker_8 = rows[1]["speedup"] / 8
        assert per_worker_8 < per_worker_4

    def test_efficiency_tiers(self):
        model = CostModel(physical_cores=20, numa_efficiency=0.8, smt_efficiency=0.5)
        assert model.efficiency(0) == 1.0
        assert model.efficiency(19) == 1.0
        assert model.efficiency(20) == 0.8
        assert model.efficiency(40) == 0.5


class TestLoadBalancing:
    def test_stealing_improves_balance(self, sim_instance):
        """Exp-6: dynamic work stealing yields near-perfect balance,
        static assignment leaves stragglers."""
        engine, query, _ = sim_instance
        with_steal = SimulatedExecutor(4, stealing=True).run(engine, query)
        without = SimulatedExecutor(4, stealing=False).run(engine, query)
        assert with_steal.embeddings == without.embeddings
        assert with_steal.load_imbalance() <= without.load_imbalance() + 1e-9

    def test_makespan_benefits_from_stealing(self, sim_instance):
        engine, query, _ = sim_instance
        with_steal = SimulatedExecutor(8, stealing=True).run(engine, query)
        without = SimulatedExecutor(8, stealing=False).run(engine, query)
        assert with_steal.makespan <= without.makespan

    def test_steal_one_mode_runs(self, sim_instance):
        engine, query, expected = sim_instance
        result = SimulatedExecutor(4, steal_mode="one").run(engine, query)
        assert result.embeddings == expected

    def test_busy_times_reported_per_worker(self, sim_instance):
        engine, query, _ = sim_instance
        result = SimulatedExecutor(4).run(engine, query)
        assert len(result.busy_times()) == 4
        assert sum(result.busy_times()) > 0


class TestConfiguration:
    def test_invalid_worker_count(self):
        with pytest.raises(SchedulerError):
            SimulatedExecutor(0)

    def test_invalid_steal_mode(self):
        with pytest.raises(SchedulerError):
            SimulatedExecutor(2, steal_mode="few")
