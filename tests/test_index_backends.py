"""Equivalence of the merge and bitset index backends.

The bitset backend must be an exact drop-in: identical candidate tuples
from ``generate_candidates`` at every step of every expansion, and
identical embedding counts across the sequential, BFS and threaded
engines.  Seeded random instances keep the corpus reproducible.
"""

from __future__ import annotations

import random

import pytest

from repro import HGMatch, Hypergraph, PartitionedStore
from repro.core.candidates import generate_candidates, vertex_step_map
from repro.hypergraph import BitsetHyperedgeIndex, InvertedHyperedgeIndex
from repro.testing import make_random_instance

SEEDS = range(10)


def _instance(seed: int):
    instance = make_random_instance(random.Random(7000 + seed), max_vertices=14)
    if instance is None:
        pytest.skip("sampling failed for this seed")
    return instance


class TestIndexEquality:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_postings_identical(self, seed):
        data, _ = _instance(seed)
        merge_store = PartitionedStore(data, index_backend="merge")
        bitset_store = PartitionedStore(data, index_backend="bitset")
        for signature, partition in merge_store.partitions.items():
            other = bitset_store.partition(signature)
            assert other is not None
            assert isinstance(partition.index, InvertedHyperedgeIndex)
            assert isinstance(other.index, BitsetHyperedgeIndex)
            assert set(partition.index.vertices()) == set(other.index.vertices())
            for vertex in partition.index.vertices():
                assert partition.index.postings(vertex) == other.index.postings(
                    vertex
                )
            assert partition.index.num_entries == other.index.num_entries


class TestCandidateEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_candidate_tuples_at_every_step(self, seed):
        """Walk the full enumeration tree under the merge backend and
        replay every (step, partial) probe against the bitset backend."""
        data, query = _instance(seed)
        merge_engine = HGMatch(data, index_backend="merge")
        bitset_engine = HGMatch(data, index_backend="bitset")
        plan = merge_engine.plan(query)

        probes = 0
        stack = [()]
        while stack:
            matched = stack.pop()
            step_plan = plan.steps[len(matched)]
            merge_part = merge_engine.store.partition(step_plan.signature)
            bitset_part = bitset_engine.store.partition(step_plan.signature)
            vmap = vertex_step_map(data, matched)
            merge_candidates = generate_candidates(
                data, merge_part, step_plan, matched, vmap
            )
            bitset_candidates = generate_candidates(
                data, bitset_part, step_plan, matched, vmap
            )
            assert bitset_candidates == merge_candidates
            assert list(merge_candidates) == sorted(set(merge_candidates))
            probes += 1
            for extended in merge_engine.expand(plan, matched):
                if len(extended) < plan.num_steps:
                    stack.append(extended)
        assert probes >= 1


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_embeddings_across_engines_and_workers(self, seed):
        data, query = _instance(seed)
        merge_engine = HGMatch(data, index_backend="merge")
        bitset_engine = HGMatch(data, index_backend="bitset")

        merge_embeddings = {
            e.canonical() for e in merge_engine.match(query, strict=True)
        }
        bitset_embeddings = {
            e.canonical() for e in bitset_engine.match(query, strict=True)
        }
        assert bitset_embeddings == merge_embeddings

        reference = len(merge_embeddings)
        for workers in (1, 4):
            assert merge_engine.count(query, workers=workers) == reference
            assert bitset_engine.count(query, workers=workers) == reference
        assert bitset_engine.count_bfs(query) == reference
        assert merge_engine.count_bfs(query) == reference


class TestVertexStepState:
    """The push/pop-delta map must always equal the from-scratch rebuild."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_advance_matches_full_rebuild(self, seed):
        from repro.core.candidates import VertexStepState

        data, query = _instance(seed)
        engine = HGMatch(data)
        plan = engine.plan(query)
        state = VertexStepState(data)
        stack = [()]
        while stack:
            matched = stack.pop()
            assert state.advance(matched) == vertex_step_map(data, matched)
            assert state.matched == matched
            for extended in engine.expand(plan, matched):
                if len(extended) < plan.num_steps:
                    stack.append(extended)

    def test_push_pop_roundtrip(self, fig1_data):
        from repro.core.candidates import VertexStepState

        state = VertexStepState(fig1_data, matched_edges=(0, 2))
        assert state.vmap == vertex_step_map(fig1_data, (0, 2))
        state.push(4)
        assert state.vmap == vertex_step_map(fig1_data, (0, 2, 4))
        assert state.pop() == 4
        assert state.vmap == vertex_step_map(fig1_data, (0, 2))
        state.advance(())
        assert state.vmap == {}
        assert state.depth == 0


class TestPersistenceRoundTrip:
    def test_bitset_store_loads_from_disk(self, fig1_data, tmp_path):
        from repro.hypergraph import load_store, save_store, stores_equal

        store = PartitionedStore(fig1_data, index_backend="bitset")
        path = str(tmp_path / "fig1.hgstore")
        save_store(store, path)
        for backend in ("merge", "bitset"):
            loaded = load_store(path, index_backend=backend)
            assert loaded.index_backend == backend
            assert stores_equal(store, loaded)


class TestBackendSelection:
    def test_unknown_backend_rejected(self, fig1_data):
        with pytest.raises(ValueError):
            PartitionedStore(fig1_data, index_backend="roaring")

    def test_engine_reports_backend(self, fig1_data):
        assert HGMatch(fig1_data).index_backend == "merge"
        assert (
            HGMatch(fig1_data, index_backend="bitset").index_backend == "bitset"
        )

    def test_plan_carries_backend(self, fig1_data, fig1_query):
        engine = HGMatch(fig1_data, index_backend="bitset")
        plan = engine.plan(fig1_query)
        assert plan.index_backend == "bitset"
        assert "bitset" in plan.describe()
