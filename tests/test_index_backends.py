"""Equivalence of the merge, bitset and adaptive index backends.

Every non-merge backend must be an exact drop-in: identical candidate
tuples from ``generate_candidates`` at every step of every expansion,
and identical embedding counts across the sequential, BFS and threaded
engines.  Seeded random instances keep the corpus reproducible.  The
adaptive backend additionally gets container-level unit tests (array ↔
bitmask choices, chunking, persistence of representation decisions).
"""

from __future__ import annotations

import random

import pytest

from repro import HGMatch, Hypergraph, PartitionedStore
from repro.core.candidates import (
    AnchorUnionMemo,
    generate_candidate_set,
    generate_candidates,
    vertex_step_map,
    vertex_step_tuples,
)
from repro.hypergraph import (
    AdaptiveHyperedgeIndex,
    BitsetHyperedgeIndex,
    InvertedHyperedgeIndex,
    default_index_backend,
)
from repro.hypergraph.index import (
    ARRAY_CONTAINER_MAX,
    chunks_count,
    chunks_intersect,
    chunks_union_many,
    container_intersect,
    container_union,
)
from repro.testing import make_random_instance

SEEDS = range(10)
ALT_BACKENDS = ("bitset", "adaptive")
INDEX_CLASSES = {
    "merge": InvertedHyperedgeIndex,
    "bitset": BitsetHyperedgeIndex,
    "adaptive": AdaptiveHyperedgeIndex,
}


def _instance(seed: int):
    instance = make_random_instance(random.Random(7000 + seed), max_vertices=14)
    if instance is None:
        pytest.skip("sampling failed for this seed")
    return instance


class TestIndexEquality:
    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_postings_identical(self, seed, backend):
        data, _ = _instance(seed)
        merge_store = PartitionedStore(data, index_backend="merge")
        other_store = PartitionedStore(data, index_backend=backend)
        for signature, partition in merge_store.partitions.items():
            other = other_store.partition(signature)
            assert other is not None
            assert isinstance(partition.index, InvertedHyperedgeIndex)
            assert isinstance(other.index, INDEX_CLASSES[backend])
            assert set(partition.index.vertices()) == set(other.index.vertices())
            for vertex in partition.index.vertices():
                assert partition.index.postings(vertex) == other.index.postings(
                    vertex
                )
                assert partition.index.postings_count(
                    vertex
                ) == other.index.postings_count(vertex)
            assert partition.index.num_entries == other.index.num_entries


class TestCandidateEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_candidate_tuples_at_every_step(self, seed):
        """Walk the full enumeration tree under the merge backend and
        replay every (step, partial) probe against the other backends."""
        data, query = _instance(seed)
        merge_engine = HGMatch(data, index_backend="merge")
        others = {
            backend: HGMatch(data, index_backend=backend)
            for backend in ALT_BACKENDS
        }
        plan = merge_engine.plan(query)

        probes = 0
        stack = [()]
        while stack:
            matched = stack.pop()
            step_plan = plan.steps[len(matched)]
            merge_part = merge_engine.store.partition(step_plan.signature)
            vmap = vertex_step_map(data, matched)
            merge_candidates = generate_candidates(
                data, merge_part, step_plan, matched, vmap
            )
            assert list(merge_candidates) == sorted(set(merge_candidates))
            for backend, engine in others.items():
                part = engine.store.partition(step_plan.signature)
                candidates = generate_candidates(
                    data, part, step_plan, matched, vmap
                )
                assert candidates == merge_candidates, backend
                # The mask-native boundary must agree with its own decode.
                candidate_set = generate_candidate_set(
                    data, part, step_plan, matched, vmap
                )
                assert candidate_set.to_tuple() == merge_candidates
                assert tuple(candidate_set) == merge_candidates
                assert len(candidate_set) == len(merge_candidates)
            probes += 1
            for extended in merge_engine.expand(plan, matched):
                if len(extended) < plan.num_steps:
                    stack.append(extended)
        assert probes >= 1

    @pytest.mark.parametrize("backend", ALT_BACKENDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_memoised_algebra_matches_unmemoised(self, seed, backend):
        """A shared anchor-union memo must never change a result set
        (min_rows=0 forces it on even for tiny partitions)."""
        data, query = _instance(seed)
        engine = HGMatch(data, index_backend=backend)
        plan = engine.plan(query)
        memo = AnchorUnionMemo(min_rows=0)
        stack = [()]
        while stack:
            matched = stack.pop()
            step_plan = plan.steps[len(matched)]
            part = engine.store.partition(step_plan.signature)
            vmap = vertex_step_map(data, matched)
            plain = generate_candidate_set(
                data, part, step_plan, matched, vmap
            ).to_tuple()
            memoised = generate_candidate_set(
                data, part, step_plan, matched, vmap, memo=memo
            ).to_tuple()
            assert memoised == plain
            for extended in engine.expand(plan, matched):
                if len(extended) < plan.num_steps:
                    stack.append(extended)
        if memo.hits:
            assert len(memo) <= memo.maxsize


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_embeddings_across_engines_and_workers(self, seed):
        data, query = _instance(seed)
        engines = {
            backend: HGMatch(data, index_backend=backend)
            for backend in ("merge",) + ALT_BACKENDS
        }
        embeddings = {
            backend: {e.canonical() for e in engine.match(query, strict=True)}
            for backend, engine in engines.items()
        }
        assert embeddings["bitset"] == embeddings["merge"]
        assert embeddings["adaptive"] == embeddings["merge"]

        reference = len(embeddings["merge"])
        for engine in engines.values():
            for workers in (1, 4):
                assert engine.count(query, workers=workers) == reference
            assert engine.count_bfs(query) == reference


class TestAnchorUnionMemo:
    def test_lru_eviction_and_stats(self):
        memo = AnchorUnionMemo(maxsize=2, min_rows=0)
        assert memo.get("a") is AnchorUnionMemo._MISS
        memo.put("a", 1)
        memo.put("b", 2)
        assert memo.get("a") == 1  # refreshes recency
        memo.put("c", 3)  # evicts "b", the least recently used
        assert memo.get("b") is AnchorUnionMemo._MISS
        assert memo.get("a") == 1
        assert memo.get("c") == 3
        assert memo.hits == 3
        assert memo.misses == 2
        assert len(memo) == 2
        memo.clear()
        assert len(memo) == 0

    def test_falsy_masks_are_cached(self):
        memo = AnchorUnionMemo(min_rows=0)
        memo.put("zero", 0)
        memo.put("empty", ())
        assert memo.get("zero") == 0
        assert memo.get("empty") == ()

    def test_engine_memo_disabled_below_min_rows(self, fig1_data, fig1_query):
        """Fig. 1 partitions are tiny, so the engine's default memo must
        stay untouched (the small-partition bypass)."""
        engine = HGMatch(fig1_data, index_backend="bitset")
        assert engine.count(fig1_query) == 2
        assert engine._anchor_memo.hits == 0
        assert engine._anchor_memo.misses == 0


class TestAdaptiveContainers:
    def test_density_decides_representation(self):
        """More than ARRAY_CONTAINER_MAX postings in a chunk → bitmask."""
        dense = ARRAY_CONTAINER_MAX + 1
        labels = ["A"] * (dense + 2)
        hub = dense  # vertex in every edge
        spoke = dense + 1  # vertex in one edge
        edges = [{i, hub} for i in range(dense)]
        edges[0] = {0, hub, spoke}
        graph = Hypergraph(labels, edges)
        index = AdaptiveHyperedgeIndex.build(graph, tuple(range(dense)))
        kinds = index.container_kinds()
        assert kinds[hub] == ((0, "bits"),)
        assert kinds[spoke] == ((0, "array"),)
        assert index.postings(hub) == tuple(range(dense))
        assert index.postings(spoke) == (0,)
        assert index.flat_containers is not None

    def test_multi_chunk_round_trip(self):
        """With tiny chunks the index spans several chunks and the chunk
        algebra must still decode the exact posting lists."""
        rng = random.Random(42)
        num_edges = 23
        labels = ["A"] * 6
        edges = []
        seen = set()
        while len(edges) < num_edges:
            edge = frozenset(rng.sample(range(6), rng.randint(2, 4)))
            if edge not in seen:
                seen.add(edge)
                edges.append(set(edge))
        graph = Hypergraph(labels, edges)
        index = AdaptiveHyperedgeIndex.build(
            graph, tuple(range(num_edges)), chunk_bits=2, array_max=2
        )
        assert index.flat_containers is None
        reference = InvertedHyperedgeIndex.build(graph, tuple(range(num_edges)))
        assert set(index.vertices()) == set(reference.vertices())
        for vertex in reference.vertices():
            assert index.postings(vertex) == reference.postings(vertex)
            assert index.postings_count(vertex) == reference.postings_count(
                vertex
            )
            chunks = index.postings_chunks(vertex)
            assert chunks_count(chunks) == reference.postings_count(vertex)
        # Chunk-map algebra against Python-set semantics.
        verts = sorted(reference.vertices())
        for a in verts:
            for b in verts:
                union = chunks_union_many(
                    [index.postings_chunks(a), index.postings_chunks(b)], 2
                )
                expected = sorted(
                    set(reference.postings(a)) | set(reference.postings(b))
                )
                assert list(index.decode_chunks(union)) == expected
                inter = chunks_intersect(
                    index.postings_chunks(a), index.postings_chunks(b)
                )
                expected = sorted(
                    set(reference.postings(a)) & set(reference.postings(b))
                )
                assert list(index.decode_chunks(inter)) == expected

    @pytest.mark.parametrize("array_max", (1, 2, 10_000))
    @pytest.mark.parametrize("seed", range(5))
    def test_flat_fold_equivalent_at_container_extremes(self, seed, array_max):
        """The anchor-union fold inlined in the adaptive candidates fast
        path (see _generate_candidates_adaptive) must match the merge
        backend whatever mix of array and bitmask containers the index
        holds.  array_max=1 forces (almost) all-bitmask indexes,
        array_max=10_000 all-array, 2 a mix — together they walk every
        branch of the inline fold that mirrors containers_union_many."""
        from repro.hypergraph.storage import HyperedgePartition

        data, query = _instance(seed)
        merge_engine = HGMatch(data, index_backend="merge")
        plan = merge_engine.plan(query)
        rebuilt = {
            signature: HyperedgePartition(
                signature,
                partition.edge_ids,
                AdaptiveHyperedgeIndex.build(
                    data, partition.edge_ids, array_max=array_max
                ),
            )
            for signature, partition in merge_engine.store.partitions.items()
        }
        stack = [()]
        while stack:
            matched = stack.pop()
            step_plan = plan.steps[len(matched)]
            merge_part = merge_engine.store.partition(step_plan.signature)
            vmap = vertex_step_map(data, matched)
            reference = generate_candidates(
                data, merge_part, step_plan, matched, vmap
            )
            adaptive = generate_candidate_set(
                data, rebuilt[step_plan.signature], step_plan, matched, vmap
            )
            assert adaptive.to_tuple() == reference
            for extended in merge_engine.expand(plan, matched):
                if len(extended) < plan.num_steps:
                    stack.append(extended)

    def test_empty_posting_list_round_trips(self):
        """A persisted ``i <vertex>`` record with zero postings must load
        into every backend identically (regression: the adaptive
        single-chunk fast path crashed on it)."""
        from repro.hypergraph.index import index_from_postings

        postings = {0: (10, 20), 5: ()}
        for backend in ("merge",) + ALT_BACKENDS:
            index = index_from_postings(backend, (10, 20, 30), postings)
            assert index.postings(5) == ()
            assert index.postings_count(5) == 0
            assert index.postings(0) == (10, 20)
            assert 5 in index

    def test_container_pairwise_ops(self):
        """All four container-kind pairings of | and &."""
        array = (1, 3)
        other = (3, 5)
        bits_a = 0b101010  # {1, 3, 5}
        bits_b = 0b001010  # {1, 3}
        assert container_union(array, other, array_max=8) == (1, 3, 5)
        assert container_union(array, other, array_max=2) == 0b101010
        assert container_union(array, bits_a, array_max=8) == 0b101010
        assert container_union(bits_a, bits_b, array_max=8) == 0b101010
        assert container_intersect(array, other) == (3,)
        assert container_intersect(array, bits_a) == (1, 3)
        assert container_intersect(bits_a, array) == (1, 3)
        assert container_intersect(bits_a, bits_b) == 0b001010


class TestVertexStepState:
    """The push/pop-delta map must always equal the from-scratch rebuild."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_advance_matches_full_rebuild(self, seed):
        from repro.core.candidates import VertexStepState

        data, query = _instance(seed)
        engine = HGMatch(data)
        plan = engine.plan(query)
        state = VertexStepState(data)
        stack = [()]
        while stack:
            matched = stack.pop()
            assert state.advance(matched) == vertex_step_map(data, matched)
            assert state.step_tuples == vertex_step_tuples(data, matched)
            assert state.matched == matched
            for extended in engine.expand(plan, matched):
                if len(extended) < plan.num_steps:
                    stack.append(extended)

    def test_push_pop_roundtrip(self, fig1_data):
        from repro.core.candidates import VertexStepState

        state = VertexStepState(fig1_data, matched_edges=(0, 2))
        assert state.vmap == vertex_step_map(fig1_data, (0, 2))
        assert state.step_tuples == vertex_step_tuples(fig1_data, (0, 2))
        state.push(4)
        assert state.vmap == vertex_step_map(fig1_data, (0, 2, 4))
        assert state.step_tuples == vertex_step_tuples(fig1_data, (0, 2, 4))
        assert state.pop() == 4
        assert state.vmap == vertex_step_map(fig1_data, (0, 2))
        state.advance(())
        assert state.vmap == {}
        assert state.step_tuples == {}
        assert state.depth == 0

    def test_step_tuples_stay_sorted(self, fig1_data):
        for matched in [(0,), (0, 2), (0, 2, 4), (5, 3)]:
            tuples = vertex_step_tuples(fig1_data, matched)
            for vertex, steps in tuples.items():
                assert steps == tuple(sorted(steps))
                assert set(steps) == vertex_step_map(fig1_data, matched)[vertex]


class TestStoreBackedFilters:
    @pytest.mark.parametrize("backend", ("merge",) + ALT_BACKENDS)
    @pytest.mark.parametrize("seed", range(5))
    def test_ihs_candidates_match_with_store(self, seed, backend):
        """Posting-mask signature pruning must equal the Counter-based
        containment check on every pool."""
        from repro.baselines import ihs_candidates

        data, query = _instance(seed)
        store = PartitionedStore(data, index_backend=backend)
        plain = ihs_candidates(query, data)
        with_store = ihs_candidates(query, data, store=store)
        assert with_store == plain

    def test_baselines_accept_store(self, fig1_data, fig1_query):
        from repro.baselines import make_baseline

        store = PartitionedStore(fig1_data, index_backend="bitset")
        for name in ("CFL-H", "DAF-H", "CECI-H"):
            plain = make_baseline(name, fig1_data)
            masked = make_baseline(name, fig1_data, store=store)
            assert masked.hyperedge_embeddings(
                fig1_query
            ) == plain.hyperedge_embeddings(fig1_query)


class TestPersistenceRoundTrip:
    @pytest.mark.parametrize("backend", ("merge",) + ALT_BACKENDS)
    def test_store_loads_from_disk_into_any_backend(self, fig1_data, tmp_path, backend):
        from repro.hypergraph import load_store, save_store, stores_equal

        store = PartitionedStore(fig1_data, index_backend=backend)
        path = str(tmp_path / "fig1.hgstore")
        save_store(store, path)
        for target in ("merge",) + ALT_BACKENDS:
            loaded = load_store(path, index_backend=target)
            assert loaded.index_backend == target
            assert stores_equal(store, loaded)

    @pytest.mark.parametrize("seed", range(5))
    def test_adaptive_container_choices_survive(self, seed, tmp_path):
        """The array/bitmask decision per chunk is a pure function of the
        posting lists, so a save/load round trip reproduces it exactly."""
        from repro.hypergraph import load_store, save_store

        data, _ = _instance(seed)
        store = PartitionedStore(data, index_backend="adaptive")
        path = str(tmp_path / "instance.hgstore")
        save_store(store, path)
        loaded = load_store(path, index_backend="adaptive")
        assert loaded.index_backend == "adaptive"
        for signature, partition in store.partitions.items():
            other = loaded.partition(signature)
            assert isinstance(other.index, AdaptiveHyperedgeIndex)
            assert other.index.container_kinds() == partition.index.container_kinds()


class TestBackendSelection:
    def test_unknown_backend_rejected(self, fig1_data):
        with pytest.raises(ValueError):
            PartitionedStore(fig1_data, index_backend="roaring")

    def test_engine_reports_backend(self, fig1_data):
        assert HGMatch(fig1_data).index_backend == default_index_backend()
        for backend in ALT_BACKENDS:
            assert (
                HGMatch(fig1_data, index_backend=backend).index_backend
                == backend
            )

    def test_env_variable_sets_default(self, fig1_data, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX_BACKEND", "adaptive")
        assert default_index_backend() == "adaptive"
        assert HGMatch(fig1_data).index_backend == "adaptive"
        monkeypatch.delenv("REPRO_INDEX_BACKEND")
        assert default_index_backend() == "merge"

    def test_plan_carries_backend(self, fig1_data, fig1_query):
        for backend in ALT_BACKENDS:
            engine = HGMatch(fig1_data, index_backend=backend)
            plan = engine.plan(fig1_query)
            assert plan.index_backend == backend
            assert backend in plan.describe()
