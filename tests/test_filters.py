"""Unit tests for the LDF and IHS candidate filters (Section III-B)."""

from __future__ import annotations

from repro import Hypergraph
from repro.baselines.filters import (
    VertexStatistics,
    candidate_summary,
    ihs_candidates,
    ldf_candidates,
)


class TestLDF:
    def test_label_filter(self, fig1_data, fig1_query):
        candidates = ldf_candidates(fig1_query, fig1_data)
        # u1 has label C → data vertices 1 and 5.
        assert set(candidates[1]) <= {1, 5}
        # u4 has label B → only data vertex 4.
        assert candidates[4] == [4]

    def test_degree_filter(self):
        query = Hypergraph(["A", "A"], [{0, 1}, {0, 1}])
        # Deduplication collapses the duplicate edge; force degree 2 with
        # two distinct edges through vertex 0.
        query = Hypergraph(["A", "A", "A"], [{0, 1}, {0, 2}])
        data = Hypergraph(["A", "A"], [{0, 1}])
        candidates = ldf_candidates(query, data)
        assert candidates[0] == []  # d(u0)=2 > every data degree


class TestIHS:
    def test_subsumes_ldf(self, fig1_data, fig1_query):
        ldf = ldf_candidates(fig1_query, fig1_data)
        ihs = ihs_candidates(fig1_query, fig1_data)
        for u in range(fig1_query.num_vertices):
            assert set(ihs[u]) <= set(ldf[u])

    def test_adjacency_condition(self):
        """|adj(u)| ≤ |adj(v)| prunes a label/degree-compatible vertex."""
        query = Hypergraph(["A", "B", "C"], [{0, 1, 2}])
        data = Hypergraph(
            ["A", "B", "C", "A", "B"],
            [{0, 1, 2}, {3, 4}],
        )
        candidates = ihs_candidates(query, data)
        # Data vertex 3 (A) has degree 1 but only one neighbour, while u0
        # has two; only vertex 0 survives for u0.
        assert candidates[0] == [0]

    def test_arity_containment_condition(self):
        """∀a: |he_a(u)| ≤ |he_a(v)|."""
        query = Hypergraph(["A", "B", "B"], [{0, 1}, {0, 2}])
        data = Hypergraph(
            ["A", "B", "B", "A", "B", "B"],
            [{0, 1}, {0, 2}, {3, 4, 5}],
        )
        candidates = ihs_candidates(query, data)
        # u0 needs two 2-ary incident edges: data vertex 0 has them; data
        # vertex 3 has only one 3-ary edge.
        assert candidates[0] == [0]

    def test_signature_condition(self):
        """Incident-edge signature multisets must be contained."""
        query = Hypergraph(["A", "B"], [{0, 1}])
        data = Hypergraph(
            ["A", "B", "A", "A"],
            [{0, 1}, {2, 3}],
        )
        candidates = ihs_candidates(query, data)
        # u0 (A) needs an incident {A,B} edge: data vertex 2/3 only have
        # an {A,A} edge.
        assert candidates[0] == [0]

    def test_fig1_candidates_exact(self, fig1_data, fig1_query):
        candidates = ihs_candidates(fig1_query, fig1_data)
        for u in range(fig1_query.num_vertices):
            assert candidates[u], f"query vertex {u} lost all candidates"


class TestVertexStatistics:
    def test_memoisation_returns_same_objects(self, fig1_data):
        stats = VertexStatistics(fig1_data)
        assert stats.arity_histogram(4) is stats.arity_histogram(4)
        assert stats.signature_multiset(2) is stats.signature_multiset(2)

    def test_adjacency_size(self, fig1_data):
        stats = VertexStatistics(fig1_data)
        assert stats.adjacency_size(2) == 5

    def test_candidate_summary(self, fig1_data, fig1_query):
        total, average = candidate_summary(ihs_candidates(fig1_query, fig1_data))
        assert total >= fig1_query.num_vertices
        assert average == total / fig1_query.num_vertices
