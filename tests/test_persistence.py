"""Tests for indexed-store persistence (offline artefact round-trips)."""

from __future__ import annotations

import io

import pytest

from repro import HGMatch, Hypergraph, PartitionedStore
from repro.errors import ParseError
from repro.hypergraph.persistence import (
    dump_store,
    load_store,
    parse_store,
    save_store,
    stores_equal,
)


def roundtrip(store: PartitionedStore) -> PartitionedStore:
    stream = io.StringIO()
    dump_store(store, stream)
    stream.seek(0)
    return parse_store(stream)


class TestRoundTrip:
    def test_fig1_store(self, fig1_data):
        store = PartitionedStore(fig1_data)
        assert stores_equal(store, roundtrip(store))

    def test_file_roundtrip(self, tmp_path, fig1_data):
        store = PartitionedStore(fig1_data)
        path = str(tmp_path / "fig1.hgstore")
        save_store(store, path)
        assert stores_equal(store, load_store(path))

    def test_int_labels(self):
        graph = Hypergraph([0, 1, 0, 1], [{0, 1}, {1, 2, 3}])
        store = PartitionedStore(graph)
        restored = roundtrip(store)
        assert restored.graph.label(0) == 0
        assert stores_equal(store, restored)

    def test_edge_labelled_graph(self):
        graph = Hypergraph(
            ["A", "A", "B"],
            [{0, 1}, {0, 1}, {1, 2}],
            edge_labels=["r", "s", "r"],
        )
        store = PartitionedStore(graph)
        restored = roundtrip(store)
        assert restored.graph.is_edge_labelled
        assert restored.graph.edge_label(1) == "s"
        assert stores_equal(store, restored)

    def test_restored_store_answers_queries(self, fig1_data, fig1_query):
        store = roundtrip(PartitionedStore(fig1_data))
        engine = HGMatch(store.graph, store=store)
        assert engine.count(fig1_query) == 2

    def test_dataset_roundtrip(self):
        from repro.datasets import load_dataset

        store = PartitionedStore(load_dataset("CH"))
        assert stores_equal(store, roundtrip(store))


class TestValidation:
    def test_bad_header_rejected(self):
        with pytest.raises(ParseError):
            parse_store(io.StringIO("NOT A STORE\n"))

    def test_malformed_record_rejected(self):
        text = "HGSTORE 1\nv 1\nl zero s:A\n"
        with pytest.raises(ParseError):
            parse_store(io.StringIO(text))

    def test_unknown_record_rejected(self):
        text = "HGSTORE 1\nv 1\nl 0 s:A\nz 1\n"
        with pytest.raises(ParseError):
            parse_store(io.StringIO(text))

    def test_posting_before_partition_rejected(self):
        text = "HGSTORE 1\nv 2\nl 0 s:A\nl 1 s:A\ne 0 1\ni 0 0\n"
        with pytest.raises(ParseError):
            parse_store(io.StringIO(text))

    def test_wrong_partition_contents_rejected(self, fig1_data):
        store = PartitionedStore(fig1_data)
        stream = io.StringIO()
        dump_store(store, stream)
        # Corrupt one partition line: move edge 0 into a wrong partition.
        corrupted = stream.getvalue().replace("p 2 3", "p 2 3 0")
        with pytest.raises(ParseError):
            parse_store(io.StringIO(corrupted))

    def test_whitespace_label_rejected(self):
        graph = Hypergraph(["A label"], [{0}])
        store = PartitionedStore(graph)
        with pytest.raises(ParseError):
            dump_store(store, io.StringIO())

    def test_stores_equal_detects_difference(self, fig1_data):
        first = PartitionedStore(fig1_data)
        other_graph = Hypergraph(
            list(fig1_data.labels), [sorted(e) for e in fig1_data.edges][:-1]
        )
        second = PartitionedStore(other_graph)
        assert not stores_equal(first, second)
