"""The socket shard executor: parity, handshake gates and failure paths.

The correctness bar matches the multiprocess executor's: bit-identical
counts against the sequential engine for every index backend — now
across real TCP connections (loopback clusters spawned by
:func:`repro.parallel.spawn_local_cluster`, i.e. the full network
path).  On top of that, the suite pins the failure modes a network
adds: mid-level worker disconnects must raise cleanly (no hang),
handshake mismatches (backend / shard arithmetic / data graph / seed)
must refuse to compose, and protocol violations must not corrupt
counts.
"""

from __future__ import annotations

import pickle
import random
import socket
import threading

import pytest

from repro import HGMatch, Hypergraph
from repro.core.counters import MatchCounters
from repro.errors import QueryError, SchedulerError, TransportError
from repro.hypergraph import INDEX_BACKENDS
from repro.parallel import (
    NetShardExecutor,
    ShardWorker,
    spawn_local_cluster,
    transport,
)
from repro.testing import make_random_instance


@pytest.fixture(scope="module")
def workload_instances():
    """A deterministic batch of small (data, query) pairs."""
    rng = random.Random(987)
    instances = []
    while len(instances) < 4:
        instance = make_random_instance(rng)
        if instance is not None:
            instances.append(instance)
    return instances


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_counts_match_sequential(workload_instances, backend):
    for data, query in workload_instances[:2]:
        engine = HGMatch(data, index_backend=backend, shards=2)
        try:
            expected = engine.count(query)
            assert engine.count(query, executor="sockets") == expected
            assert engine.count_bfs(query, executor="sockets") == expected
        finally:
            engine.close()


def test_counter_funnel_matches_sequential(workload_instances):
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="bitset", shards=2)
    try:
        sequential = MatchCounters()
        expected = engine.count(query, counters=sequential)
        networked = MatchCounters()
        assert engine.count(
            query, executor="sockets", counters=networked
        ) == expected
        assert networked.candidates == sequential.candidates
        assert networked.filtered == sequential.filtered
        assert networked.embeddings == sequential.embeddings
        assert networked.work_model == sequential.work_model
    finally:
        engine.close()


def test_addresses_mode_in_any_order(workload_instances):
    """Replies map by handshake shard id, not by address order."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="adaptive")
    cluster = spawn_local_cluster(data, 3, index_backend="adaptive")
    executor = NetShardExecutor(
        addresses=list(reversed(cluster.addresses)),
        index_backend="adaptive",
    )
    try:
        result = executor.run(engine, query)
        assert result.embeddings == engine.count(query)
        assert [stats.worker_id for stats in result.worker_stats] == [0, 1, 2]
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_worker_sessions_are_reusable(workload_instances):
    """STOP ends a session, not the server: two coordinators in turn."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="merge")
    worker = ShardWorker(data, 0, 1, index_backend="merge")
    address = worker.bind()
    thread = threading.Thread(
        target=worker.serve_forever, kwargs={"max_sessions": 2}, daemon=True
    )
    thread.start()
    try:
        expected = engine.count(query)
        for _ in range(2):
            executor = NetShardExecutor(
                addresses=[address], index_backend="merge"
            )
            try:
                assert executor.run(engine, query).embeddings == expected
            finally:
                executor.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
    finally:
        worker.close()
        engine.close()


def test_handshake_backend_mismatch(workload_instances):
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="merge")
    cluster = spawn_local_cluster(data, 2, index_backend="bitset")
    executor = NetShardExecutor(
        addresses=cluster.addresses, index_backend="merge"
    )
    try:
        with pytest.raises(SchedulerError, match="backend mismatch"):
            executor.run(engine, query)
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_handshake_graph_mismatch():
    data = Hypergraph(
        labels=["A", "B", "A", "B"], edges=[{0, 1}, {2, 3}, {0, 3}]
    )
    query = Hypergraph(labels=["A", "B"], edges=[{0, 1}])
    other_data = Hypergraph(labels=["A", "B"], edges=[{0, 1}])
    engine = HGMatch(data, index_backend="merge")
    cluster = spawn_local_cluster(other_data, 2, index_backend="merge")
    executor = NetShardExecutor(
        addresses=cluster.addresses, index_backend="merge"
    )
    try:
        with pytest.raises(SchedulerError, match="data graph mismatch"):
            executor.run(engine, query)
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_handshake_seed_mismatch(workload_instances):
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="merge")
    cluster = spawn_local_cluster(data, 1, index_backend="merge", seed=123)
    executor = NetShardExecutor(
        addresses=cluster.addresses, index_backend="merge", seed=0
    )
    try:
        with pytest.raises(SchedulerError, match="seed mismatch"):
            executor.run(engine, query)
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_handshake_shard_arithmetic_mismatch(workload_instances):
    """Workers believing in a different shard count must be refused —
    composing them would double- or under-count rows."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="merge")
    cluster = spawn_local_cluster(data, 3, index_backend="merge")
    executor = NetShardExecutor(
        addresses=cluster.addresses[:2], index_backend="merge"
    )
    try:
        with pytest.raises(SchedulerError, match="shard arithmetic"):
            executor.run(engine, query)
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_duplicate_shard_ids_rejected(workload_instances):
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="merge")
    # Two independent clusters: their shard-0 servers both announce
    # shard id 0 — composing them would double-count its rows.
    first = spawn_local_cluster(data, 2, index_backend="merge")
    second = spawn_local_cluster(data, 2, index_backend="merge")
    executor = NetShardExecutor(
        addresses=[first.addresses[0], second.addresses[0]],
        index_backend="merge",
    )
    try:
        with pytest.raises(SchedulerError, match="both announced"):
            executor.run(engine, query)
    finally:
        executor.close()
        first.close()
        second.close()
        engine.close()


def test_dead_worker_between_jobs_recovers_transparently(workload_instances):
    """A worker lost *between* jobs (or a session idled out) is caught
    by the liveness probe on reuse: the executor rebuilds its pool and
    the query succeeds instead of failing on a stale socket."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="bitset")
    executor = NetShardExecutor(num_shards=2, index_backend="bitset")
    try:
        expected = engine.count(query)
        assert executor.run(engine, query).embeddings == expected
        victim = executor._cluster.processes[0]
        victim.terminate()
        victim.join(timeout=2.0)
        # The probe detects the dead session and respawns the cluster.
        assert executor.run(engine, query).embeddings == expected
    finally:
        executor.close()
        engine.close()


def test_mid_job_local_worker_loss_respawns_and_requeues(
    workload_instances,
):
    """A local-cluster worker killed *mid-job* is respawned and the
    in-flight level requeued to it: the job completes with the correct
    count instead of failing (ROADMAP's restart-with-requeue, local
    slice).  Remote (addresses-mode) workers keep the clean
    SchedulerError — see test_mid_level_disconnect_raises_cleanly."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="bitset")
    executor = NetShardExecutor(num_shards=2, index_backend="bitset")
    try:
        expected = engine.count(query)
        assert executor.run(engine, query).embeddings == expected

        original_broadcast = executor._broadcast
        state = {"killed": False}

        def kill_after_first_level(message):
            original_broadcast(message)
            if message[0] == "level" and not state["killed"]:
                state["killed"] = True
                victim = executor._cluster.processes[1]
                victim.terminate()
                victim.join(timeout=2.0)

        executor._broadcast = kill_after_first_level
        result = executor.run(engine, query)
        assert state["killed"]
        assert result.embeddings == expected
        # Both shards reported accounting (the respawned one included).
        assert sorted(s.worker_id for s in result.worker_stats) == [0, 1]
        # The pool keeps serving afterwards with the fresh worker.
        executor._broadcast = original_broadcast
        assert executor.run(engine, query).embeddings == expected
        assert all(
            process.is_alive() for process in executor._cluster.processes
        )
    finally:
        executor.close()
        engine.close()


def test_mid_job_worker_loss_after_rebalance_restores_layout(
    workload_instances,
):
    """A worker respawned mid-job rebuilds under the spawn mode and
    must be upgraded to the pool's rebalanced layout before the level
    is requeued — otherwise its rows would drift."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="bitset")
    executor = NetShardExecutor(num_shards=2, index_backend="bitset")
    try:
        expected = engine.count(query)
        first = executor.run(engine, query)
        assert first.embeddings == expected
        stats = sorted(first.worker_stats, key=lambda s: s.worker_id)
        stats[0].cpu_time, stats[1].cpu_time = 4.0, 1.0
        if executor.rebalance(stats) == 0:
            pytest.skip("synthetic loads moved no boundary on this data")
        assert executor._sharding_label.startswith("rebalanced-")

        original_broadcast = executor._broadcast
        state = {"killed": False}

        def kill_after_first_level(message):
            original_broadcast(message)
            if message[0] == "level" and not state["killed"]:
                state["killed"] = True
                victim = executor._cluster.processes[0]
                victim.terminate()
                victim.join(timeout=2.0)

        executor._broadcast = kill_after_first_level
        result = executor.run(engine, query)
        assert state["killed"]
        assert result.embeddings == expected
    finally:
        executor.close()
        engine.close()


def test_mid_level_disconnect_raises_cleanly(workload_instances):
    """A worker vanishing *mid-job* must raise SchedulerError promptly
    (no hang, nothing half-composed) — a fake worker completes the
    handshake and the job setup, then drops the connection."""
    from repro.hypergraph import StoreShard

    data, query = workload_instances[0]
    descriptor = StoreShard.build(data, 0, 1, index_backend="merge").describe()
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    address = listener.getsockname()[:2]

    def flaky_worker():
        conn, _ = listener.accept()
        with conn:
            transport.send_frame(
                conn,
                transport.MSG_HELLO,
                transport.encode_handshake(descriptor.as_dict(), 0),
            )
            transport.recv_frame(conn)  # JOB
            transport.recv_frame(conn)  # LEVEL 0
            # ... and die without replying.

    thread = threading.Thread(target=flaky_worker, daemon=True)
    thread.start()
    engine = HGMatch(data, index_backend="merge")
    executor = NetShardExecutor(addresses=[address], index_backend="merge")
    try:
        with pytest.raises(SchedulerError, match="disconnected mid-job"):
            executor.run(engine, query)
    finally:
        executor.close()
        listener.close()
        engine.close()


def test_shutdown_worker_stops_a_server(workload_instances):
    """The QUIT frame has a real sender: shutdown_worker() gracefully
    stops a serve-forever worker, local or remote."""
    from repro.parallel import shutdown_worker

    data, _query = workload_instances[0]
    worker = ShardWorker(data, 0, 1, index_backend="merge")
    address = worker.bind()
    thread = threading.Thread(target=worker.serve_forever, daemon=True)
    thread.start()
    try:
        assert shutdown_worker(address)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        # Asking again reports the worker as already gone.
        assert not shutdown_worker(address, timeout=1.0)
    finally:
        worker.close()


def test_local_cluster_close_is_graceful(workload_instances):
    """LocalCluster.close() QUITs its workers; they exit cleanly (code
    0), not via SIGTERM."""
    data, _query = workload_instances[0]
    cluster = spawn_local_cluster(data, 2, index_backend="merge")
    processes = list(cluster.processes)
    cluster.close()
    assert [process.exitcode for process in processes] == [0, 0]


def test_malformed_descriptor_is_rejected_cleanly():
    """A HELLO whose descriptor is missing fields must raise the
    documented SchedulerError, not leak a KeyError."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    address = listener.getsockname()[:2]

    def impostor():
        conn, _ = listener.accept()
        with conn:
            transport.send_frame(
                conn,
                transport.MSG_HELLO,
                transport.encode_handshake({"shard_id": 0}, 0),
            )

    thread = threading.Thread(target=impostor, daemon=True)
    thread.start()
    data = Hypergraph(labels=["A", "A"], edges=[{0, 1}])
    query = Hypergraph(labels=["A", "A"], edges=[{0, 1}])
    engine = HGMatch(data, index_backend="merge")
    executor = NetShardExecutor(addresses=[address], index_backend="merge")
    try:
        with pytest.raises(SchedulerError, match="malformed handshake"):
            executor.run(engine, query)
    finally:
        executor.close()
        listener.close()
        engine.close()


def test_non_hello_peer_is_rejected():
    """Connecting to something that is not a shard server must fail the
    handshake, not hang or mis-compose."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    address = listener.getsockname()[:2]

    def impostor():
        conn, _ = listener.accept()
        with conn:
            transport.send_frame(conn, transport.MSG_STOP)

    thread = threading.Thread(target=impostor, daemon=True)
    thread.start()
    data = Hypergraph(labels=["A", "A"], edges=[{0, 1}])
    query = Hypergraph(labels=["A", "A"], edges=[{0, 1}])
    engine = HGMatch(data, index_backend="merge")
    executor = NetShardExecutor(addresses=[address], index_backend="merge")
    try:
        with pytest.raises(SchedulerError, match="before HELLO"):
            executor.run(engine, query)
    finally:
        executor.close()
        listener.close()
        engine.close()


def test_worker_survives_garbage_frames(workload_instances):
    """A garbled session must not take the server down: the worker drops
    the session and serves the next coordinator normally."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="merge")
    worker = ShardWorker(data, 0, 1, index_backend="merge")
    address = worker.bind()
    thread = threading.Thread(
        target=worker.serve_forever, kwargs={"max_sessions": 2}, daemon=True
    )
    thread.start()
    try:
        # Session 1: speak garbage (bad version byte) after the HELLO.
        with socket.create_connection(address, timeout=5.0) as sock:
            kind, _body = transport.recv_frame(sock)
            assert kind == transport.MSG_HELLO
            sock.sendall(b"\x06\x00\x00\x00\xff\xff140282")
        # Session 2: a real coordinator still gets served.
        executor = NetShardExecutor(addresses=[address], index_backend="merge")
        try:
            assert executor.run(engine, query).embeddings == engine.count(
                query
            )
        finally:
            executor.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
    finally:
        worker.close()
        engine.close()


def test_worker_reports_enumeration_errors(workload_instances):
    """Worker-side failures arrive as ERROR frames -> SchedulerError
    with the remote traceback, mirroring the process executor."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="merge")
    worker = ShardWorker(data, 0, 1, index_backend="merge")
    address = worker.bind()
    thread = threading.Thread(
        target=worker.serve_forever, kwargs={"max_sessions": 1}, daemon=True
    )
    thread.start()
    try:
        with socket.create_connection(address, timeout=5.0) as sock:
            kind, _ = transport.recv_frame(sock)
            assert kind == transport.MSG_HELLO
            # A LEVEL before any JOB: plan is None -> worker-side error.
            transport.send_pickle_frame(
                sock, transport.MSG_LEVEL, (0, [()])
            )
            kind, body = transport.recv_frame(sock)
            assert kind == transport.MSG_ERROR
            assert "Traceback" in pickle.loads(body)
    finally:
        worker.close()
        engine.close()


def test_engine_net_executor_lifecycle(workload_instances):
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="bitset", shards=2)
    try:
        executor = engine.net_executor()
        assert engine.count(query, executor="sockets") == engine.count(query)
        # Same coordinator object serves the next query.
        assert engine.net_executor() is executor
        # A different shard count rebuilds.
        other = engine.net_executor(3)
        assert other is not executor
        assert other.num_shards == 3
        # Host-pinned executors refuse conflicting shard counts.
        cluster = spawn_local_cluster(data, 2, index_backend="bitset")
        try:
            pinned = engine.net_executor(hosts=cluster.addresses)
            assert pinned.addresses is not None
            assert engine.net_executor() is pinned
            assert engine.count(query, executor="sockets") == engine.count(
                query
            )
            with pytest.raises(QueryError):
                engine.net_executor(5)
        finally:
            cluster.close()
    finally:
        engine.close()


def test_invalid_configuration():
    with pytest.raises(SchedulerError):
        NetShardExecutor()
    with pytest.raises(SchedulerError):
        NetShardExecutor(num_shards=0)
    with pytest.raises(SchedulerError):
        NetShardExecutor(addresses=[("h", 1)], num_shards=2)
    with pytest.raises(SchedulerError):
        spawn_local_cluster(
            Hypergraph(labels=["A", "A"], edges=[{0, 1}]), 0
        )


def test_single_step_query(fig1_data):
    """num_steps == 1: the SCAN level is also the final level."""
    query = Hypergraph(labels=["A", "B"], edges=[{0, 1}])
    engine = HGMatch(fig1_data, shards=2)
    try:
        expected = engine.count(query)
        assert engine.count(query, executor="sockets") == expected
    finally:
        engine.close()


def test_results_are_reproducible_across_runs(workload_instances):
    data, query = workload_instances[1]
    engine = HGMatch(data, index_backend="adaptive", shards=2)
    try:
        first = engine.net_executor().run(engine, query)
        second = engine.net_executor().run(engine, query)
        assert first.embeddings == second.embeddings
        assert first.counters.as_row() == second.counters.as_row()
        assert [s.payload_bytes for s in first.worker_stats] == [
            s.payload_bytes for s in second.worker_stats
        ]
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Replication (K replicas per shard range)
# ----------------------------------------------------------------------


def test_replicated_local_pool_counts_match(workload_instances):
    """K=2 local pool: counts and accounting are bit-identical to the
    unreplicated run (spares receive the JOB but answer no level)."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="bitset", shards=2)
    executor = NetShardExecutor(
        num_shards=2, num_replicas=2, index_backend="bitset"
    )
    try:
        expected = engine.count(query)
        result = executor.run(engine, query)
        assert result.embeddings == expected
        assert sorted(s.worker_id for s in result.worker_stats) == [0, 1]
        # 2 shards x 2 replicas, flat layout.
        assert len(executor._cluster.processes) == 4
        assert executor._cluster.num_shards == 2
        # Warm reuse still works (the COLLECT probe round-trips).
        assert executor.run(engine, query).embeddings == expected
    finally:
        executor.close()
        engine.close()


def test_replicated_addresses_mode_tolerates_dead_replica(
    workload_instances,
):
    """K=2 addresses mode: one dead replica at pool build merely loses
    that replica; zero live replicas for a shard refuses to compose."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="merge")
    cluster = spawn_local_cluster(
        data, 2, index_backend="merge", num_replicas=2
    )
    try:
        expected = engine.count(query)
        # Kill shard 1's replica 1: the pool still has a live replica
        # of every range and must compose exact counts.
        cluster.kill_member(1, 1)
        executor = NetShardExecutor(
            addresses=list(cluster.addresses),
            num_replicas=2,
            index_backend="merge",
        )
        try:
            assert executor.run(engine, query).embeddings == expected
        finally:
            executor.close()
        # Kill shard 0 entirely: zero live replicas -> clean refusal.
        cluster.kill_member(0, 0)
        cluster.kill_member(0, 1)
        executor = NetShardExecutor(
            addresses=list(cluster.addresses),
            num_replicas=2,
            index_backend="merge",
        )
        try:
            with pytest.raises(SchedulerError, match="no live replica"):
                executor.run(engine, query)
        finally:
            executor.close()
    finally:
        cluster.close()
        engine.close()


def test_replica_arithmetic_mismatch(workload_instances):
    """A worker believing in a different replication factor must be
    refused at handshake, like any other contract mismatch."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="merge")
    worker = ShardWorker(
        data, 0, 1, index_backend="merge", replica_id=0, num_replicas=2
    )
    address = worker.bind()
    thread = threading.Thread(
        target=worker.serve_forever, kwargs={"max_sessions": 1}, daemon=True
    )
    thread.start()
    executor = NetShardExecutor(addresses=[address], index_backend="merge")
    try:
        with pytest.raises(SchedulerError, match="replica arithmetic"):
            executor.run(engine, query)
    finally:
        executor.close()
        worker.close()
        engine.close()


def test_duplicate_replica_identity_rejected(workload_instances):
    """Two workers announcing the same (shard, replica) slot: composing
    them would be ambiguous, so the pool build refuses."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="merge")
    workers = [
        ShardWorker(
            data, 0, 1, index_backend="merge", replica_id=0, num_replicas=2
        )
        for _ in range(2)
    ]
    threads = []
    addresses = []
    for worker in workers:
        addresses.append(worker.bind())
        thread = threading.Thread(
            target=worker.serve_forever,
            kwargs={"max_sessions": 1},
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    executor = NetShardExecutor(
        addresses=addresses, num_replicas=2, index_backend="merge"
    )
    try:
        with pytest.raises(SchedulerError, match="both announced"):
            executor.run(engine, query)
    finally:
        executor.close()
        for worker in workers:
            worker.close()
        engine.close()


def test_io_timeout_is_configurable(monkeypatch):
    """REPRO_NET_TIMEOUT seeds the default; the kwarg wins over it."""
    from repro.parallel import default_io_timeout
    from repro.parallel.net_executor import DEFAULT_IO_TIMEOUT

    monkeypatch.delenv("REPRO_NET_TIMEOUT", raising=False)
    assert default_io_timeout() == DEFAULT_IO_TIMEOUT
    monkeypatch.setenv("REPRO_NET_TIMEOUT", "7.5")
    assert default_io_timeout() == 7.5
    executor = NetShardExecutor(num_shards=1)
    assert executor.io_timeout == 7.5
    executor.close()
    executor = NetShardExecutor(num_shards=1, io_timeout=1.25)
    assert executor.io_timeout == 1.25
    executor.close()
    # Garbage is refused at parse time with a *TransportError* naming
    # the knob — never deferred to a confusing failure mid-job (it
    # still satisfies ``except SchedulerError`` by subclassing).
    monkeypatch.setenv("REPRO_NET_TIMEOUT", "soon")
    with pytest.raises(TransportError, match="REPRO_NET_TIMEOUT"):
        default_io_timeout()
    monkeypatch.setenv("REPRO_NET_TIMEOUT", "-3")
    with pytest.raises(TransportError, match="positive"):
        default_io_timeout()


def test_retry_policy_is_bounded_and_reproducible():
    from repro.parallel import RetryPolicy

    policy = RetryPolicy(
        attempts=5, base_delay=0.1, max_delay=0.4, jitter=0.5
    )
    # Without jitter: pure capped exponential.
    assert policy.delay(0) == pytest.approx(0.1)
    assert policy.delay(1) == pytest.approx(0.2)
    assert policy.delay(10) == pytest.approx(0.4)
    # With a seeded rng: jittered within [base, base * 1.5], and the
    # same seed reproduces the same schedule.
    first = [policy.delay(a, random.Random(3)) for a in range(5)]
    second = [policy.delay(a, random.Random(3)) for a in range(5)]
    assert first == second
    for attempt, delay in enumerate(first):
        base = min(0.4, 0.1 * 2.0 ** attempt)
        assert base <= delay <= base * 1.5


def test_invalid_replica_configuration():
    with pytest.raises(SchedulerError):
        NetShardExecutor(num_shards=2, num_replicas=0)
    with pytest.raises(SchedulerError, match="divide"):
        NetShardExecutor(
            addresses=[("h", 1), ("h", 2), ("h", 3)], num_replicas=2
        )
    with pytest.raises(SchedulerError):
        ShardWorker(
            Hypergraph(labels=["A", "A"], edges=[{0, 1}]),
            0, 1, replica_id=2, num_replicas=2,
        )
    with pytest.raises(SchedulerError):
        spawn_local_cluster(
            Hypergraph(labels=["A", "A"], edges=[{0, 1}]), 1,
            num_replicas=0,
        )


def test_retry_knobs_are_configurable(monkeypatch):
    """REPRO_NET_RETRIES / REPRO_NET_BACKOFF seed the default retry
    policy — the env twins of REPRO_NET_TIMEOUT, with the same
    refuse-garbage-loudly contract."""
    from repro.parallel import default_retry_policy
    from repro.parallel.tasks import RetryPolicy

    monkeypatch.delenv("REPRO_NET_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_NET_BACKOFF", raising=False)
    assert default_retry_policy() == RetryPolicy()
    monkeypatch.setenv("REPRO_NET_RETRIES", "7")
    monkeypatch.setenv("REPRO_NET_BACKOFF", "0.25")
    policy = default_retry_policy()
    assert policy.attempts == 7
    assert policy.base_delay == 0.25
    # A configured executor adopts the env policy; the kwarg wins.
    executor = NetShardExecutor(num_shards=1)
    assert executor.retry.attempts == 7
    executor.close()
    pinned = NetShardExecutor(num_shards=1, retry=RetryPolicy(attempts=2))
    assert pinned.retry.attempts == 2
    pinned.close()
    # A backoff larger than the default ceiling raises the ceiling too
    # (delays must stay >= base_delay).
    monkeypatch.setenv("REPRO_NET_BACKOFF", "5.0")
    wide = default_retry_policy()
    assert wide.base_delay == 5.0
    assert wide.max_delay >= 5.0


def test_retry_knob_garbage_is_refused(monkeypatch):
    from repro.parallel import default_retry_policy

    monkeypatch.setenv("REPRO_NET_RETRIES", "several")
    with pytest.raises(TransportError, match="REPRO_NET_RETRIES"):
        default_retry_policy()
    monkeypatch.setenv("REPRO_NET_RETRIES", "0")
    with pytest.raises(TransportError, match="REPRO_NET_RETRIES"):
        default_retry_policy()
    monkeypatch.delenv("REPRO_NET_RETRIES", raising=False)
    monkeypatch.setenv("REPRO_NET_BACKOFF", "soon")
    with pytest.raises(TransportError, match="REPRO_NET_BACKOFF"):
        default_retry_policy()
    monkeypatch.setenv("REPRO_NET_BACKOFF", "-1")
    with pytest.raises(TransportError, match="REPRO_NET_BACKOFF"):
        default_retry_policy()


def test_close_is_idempotent_in_every_lifecycle_state(workload_instances):
    """``close()`` must be safe to call twice at any point in the
    executor's life: never used, mid-life after a job, and again after
    the first close — no exception, no leaked cluster."""
    data, query = workload_instances[0]
    # Never used: no pool, no cluster.
    executor = NetShardExecutor(num_shards=2)
    executor.close()
    executor.close()
    # After a job: the second close finds everything already released.
    engine = HGMatch(data, index_backend="bitset")
    executor = NetShardExecutor(num_shards=2, index_backend="bitset")
    try:
        executor.run(engine, query)
    finally:
        executor.close()
        assert executor._cluster is None
        assert not executor._members
        executor.close()
        engine.close()
        engine.close()  # HGMatch.close is idempotent too


def test_close_after_refused_handshake_releases_everything(
    workload_instances,
):
    """A pool refused at handshake (backend mismatch discovered on the
    first worker) must be closable — twice — without raising, and the
    failed ``run`` itself must already have released its sockets, so
    the workers accept a later, correctly-configured coordinator."""
    data, query = workload_instances[0]
    cluster = spawn_local_cluster(data, 2, index_backend="merge")
    mismatched = HGMatch(data, index_backend="bitset")
    engine = HGMatch(data, index_backend="merge")
    executor = NetShardExecutor(
        addresses=list(cluster.addresses), index_backend="bitset"
    )
    try:
        with pytest.raises(SchedulerError, match="backend"):
            executor.run(mismatched, query)
        assert not executor._members  # nothing half-open survived
        executor.close()
        executor.close()
        # The refused workers are intact: a matching coordinator works.
        good = NetShardExecutor(
            addresses=list(cluster.addresses), index_backend="merge"
        )
        try:
            assert good.run(engine, query).embeddings == engine.count(query)
        finally:
            good.close()
    finally:
        executor.close()
        cluster.close()
        mismatched.close()
        engine.close()
