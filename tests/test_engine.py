"""Unit and behavioural tests for the HGMatch engine (Algorithm 2)."""

from __future__ import annotations

import random

import pytest

from repro import HGMatch, Hypergraph, MatchCounters, QueryError, TimeoutExceeded
from repro.hypergraph.generators import generate_hypergraph


class TestFig1:
    def test_count(self, fig1_engine, fig1_query):
        assert fig1_engine.count(fig1_query) == 2

    def test_embeddings_are_the_papers(self, fig1_engine, fig1_query):
        found = {e.canonical() for e in fig1_engine.match(fig1_query)}
        # Paper: {e1,e3,e5} and {e2,e4,e6} — 0-based (0,2,4) and (1,3,5).
        assert found == {(0, 2, 4), (1, 3, 5)}

    def test_strict_mode_agrees(self, fig1_engine, fig1_query):
        strict = list(fig1_engine.match(fig1_query, strict=True))
        assert len(strict) == 2

    def test_partial_query_single_edge(self, fig1_engine):
        """Example III.1: partial query ({u2,u4}) has embeddings (e1), (e2)."""
        partial = Hypergraph(["A", "B"], [{0, 1}])
        found = {e.canonical() for e in fig1_engine.match(partial)}
        assert found == {(0,), (1,)}

    def test_custom_order(self, fig1_engine, fig1_query):
        for order in [(0, 1, 2), (0, 2, 1), (1, 0, 2), (2, 0, 1), (1, 2, 0)]:
            assert fig1_engine.count(fig1_query, order=order) == 2

    def test_invalid_order_rejected(self, fig1_engine, fig1_query):
        with pytest.raises(QueryError):
            fig1_engine.count(fig1_query, order=(0, 1))

    def test_vertex_embedding_count(self, fig1_engine, fig1_query):
        assert fig1_engine.count_vertex_embeddings(fig1_query) == 2


class TestEmbeddingObject:
    def test_hyperedge_mapping(self, fig1_engine, fig1_query):
        embedding = next(iter(fig1_engine.match(fig1_query)))
        mapping = embedding.hyperedge_mapping()
        assert set(mapping) == {0, 1, 2}

    def test_vertex_mappings_are_injective_and_label_preserving(
        self, fig1_data, fig1_engine, fig1_query
    ):
        for embedding in fig1_engine.match(fig1_query):
            mappings = list(embedding.vertex_mappings())
            assert len(mappings) == embedding.num_vertex_mappings() == 1
            mapping = mappings[0]
            assert len(set(mapping.values())) == len(mapping)
            for u, v in mapping.items():
                assert fig1_query.label(u) == fig1_data.label(v)

    def test_equality_and_hash(self, fig1_engine, fig1_query):
        first = list(fig1_engine.match(fig1_query))
        second = list(fig1_engine.match(fig1_query))
        assert set(first) == set(second)

    def test_repr(self, fig1_engine, fig1_query):
        embedding = next(iter(fig1_engine.match(fig1_query)))
        assert "Embedding(" in repr(embedding)


class TestEngineBehaviour:
    def test_empty_query_raises(self, fig1_engine):
        with pytest.raises(QueryError):
            fig1_engine.count(Hypergraph(["A"], []))

    def test_disconnected_query_raises(self, fig1_engine):
        query = Hypergraph(["A", "B", "A", "B"], [{0, 1}, {2, 3}])
        with pytest.raises(QueryError):
            fig1_engine.count(query)

    def test_no_matching_partition_gives_zero(self, fig1_engine):
        query = Hypergraph(["B", "B"], [{0, 1}])
        assert fig1_engine.count(query) == 0

    def test_query_equals_data(self, fig1_data):
        engine = HGMatch(fig1_data)
        assert engine.count(fig1_data) >= 1

    def test_counters_populated(self, fig1_engine, fig1_query):
        counters = MatchCounters()
        assert fig1_engine.count(fig1_query, counters=counters) == 2
        assert counters.embeddings == 2
        assert counters.candidates >= 2
        assert counters.filtered >= counters.embeddings
        assert counters.tasks >= 1

    def test_time_budget_enforced(self):
        rng = random.Random(0)
        data = generate_hypergraph(200, 1200, 1, 3.0, 6, rng)
        engine = HGMatch(data)
        query = Hypergraph(
            [data.label(0)] * 5, [{0, 1, 2}, {2, 3, 4}, {0, 1, 4}]
        )
        with pytest.raises(TimeoutExceeded):
            engine.count(query, time_budget=0.0)

    def test_bfs_count_agrees(self, fig1_engine, fig1_query):
        assert fig1_engine.count_bfs(fig1_query) == 2

    def test_bfs_retains_more_than_lifo_on_bushy_queries(self):
        """The Exp-5 phenomenon at unit scale: BFS materialises whole
        levels while the LIFO loop keeps a bounded stack."""
        rng = random.Random(1)
        data = generate_hypergraph(40, 220, 1, 2.2, 3, rng)
        label = data.label(0)
        query = Hypergraph([label] * 3, [{0, 1}, {1, 2}])
        engine = HGMatch(data)
        lifo, bfs = MatchCounters(), MatchCounters()
        count_lifo = engine.count(query, counters=lifo)
        count_bfs = engine.count_bfs(query, counters=bfs)
        assert count_lifo == count_bfs
        if count_bfs > 10:
            assert bfs.peak_retained > lifo.peak_retained

    def test_shared_store_reuse(self, fig1_data, fig1_query):
        from repro import PartitionedStore

        store = PartitionedStore(fig1_data)
        first = HGMatch(fig1_data, store=store)
        second = HGMatch(fig1_data, store=store)
        assert first.count(fig1_query) == second.count(fig1_query) == 2

    def test_plan_describe(self, fig1_engine, fig1_query):
        plan = fig1_engine.plan(fig1_query)
        assert "SCAN" in plan.describe()
