"""Unit tests for hypergraph text I/O."""

from __future__ import annotations

import io

import pytest

from repro import Hypergraph
from repro.errors import ParseError
from repro.hypergraph.io import (
    dump_native,
    load_native,
    load_simplex_dir,
    parse_native,
    save_native,
    save_simplex_dir,
)


def as_string_labels(graph: Hypergraph) -> Hypergraph:
    return Hypergraph([str(label) for label in graph.labels], graph.edges)


class TestNativeFormat:
    def test_roundtrip_stream(self, fig1_data):
        stream = io.StringIO()
        dump_native(fig1_data, stream)
        stream.seek(0)
        parsed = parse_native(stream)
        assert parsed == as_string_labels(fig1_data)

    def test_roundtrip_file(self, tmp_path, fig1_data):
        path = str(tmp_path / "graph.hg")
        save_native(fig1_data, path)
        assert load_native(path) == as_string_labels(fig1_data)

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\nv 2\n\nl 0 A\nl 1 B\ne 0 1\n"
        parsed = parse_native(io.StringIO(text))
        assert parsed.num_vertices == 2
        assert parsed.has_edge({0, 1})

    def test_missing_header_raises(self):
        with pytest.raises(ParseError):
            parse_native(io.StringIO("l 0 A\n"))

    def test_unknown_record_raises(self):
        with pytest.raises(ParseError):
            parse_native(io.StringIO("v 1\nx nonsense\n"))

    def test_malformed_record_raises(self):
        with pytest.raises(ParseError):
            parse_native(io.StringIO("v 1\ne one two\n"))


class TestSimplexFormat:
    def test_roundtrip(self, tmp_path, fig1_data):
        directory = str(tmp_path)
        save_simplex_dir(fig1_data, directory, "fig1")
        parsed = load_simplex_dir(directory, "fig1")
        assert parsed == as_string_labels(fig1_data)

    def test_length_mismatch_raises(self, tmp_path):
        (tmp_path / "bad-labels.txt").write_text("A\nB\n")
        (tmp_path / "bad-nverts.txt").write_text("2\n")
        (tmp_path / "bad-simplices.txt").write_text("1\n")
        with pytest.raises(ParseError):
            load_simplex_dir(str(tmp_path), "bad")

    def test_vertex_out_of_range_raises(self, tmp_path):
        (tmp_path / "bad-labels.txt").write_text("A\n")
        (tmp_path / "bad-nverts.txt").write_text("2\n")
        (tmp_path / "bad-simplices.txt").write_text("1\n5\n")
        with pytest.raises(ParseError):
            load_simplex_dir(str(tmp_path), "bad")

    def test_one_based_ids(self, tmp_path):
        (tmp_path / "tiny-labels.txt").write_text("A\nB\n")
        (tmp_path / "tiny-nverts.txt").write_text("2\n")
        (tmp_path / "tiny-simplices.txt").write_text("1\n2\n")
        parsed = load_simplex_dir(str(tmp_path), "tiny")
        assert parsed.has_edge({0, 1})
