"""Durable mutation journal: torn tails, corruption, snapshots, knobs.

Pins the crash-consistency contracts:

* the record codec and :func:`scan_journal`'s two-tier damage model —
  a torn tail (the expected residue of a crash mid-append) is silently
  truncated at the last good record boundary, while corruption *before*
  the tail raises the typed :class:`JournalCorruption`;
* snapshot round-trips reconstructing a coordinate-identical
  :class:`DynamicHypergraph` (same fingerprint, same next edge id);
* :meth:`MutationJournal.recover` = newest readable snapshot + replay
  suffix, surviving a damaged newest snapshot by falling back and
  replaying further;
* environment knobs (``REPRO_JOURNAL_DIR`` / ``REPRO_JOURNAL_FSYNC`` /
  ``REPRO_JOURNAL_SNAPSHOT_INTERVAL``) validated at parse time with
  typed errors naming the knob;
* the seeded crash-point recovery oracle: kill the log at every record
  boundary and mid-record, recover, and land bit-identical on the
  longest committed prefix.
"""

import json
import os
import random
import struct
import zlib

import pytest

from repro import Hypergraph
from repro.errors import JournalCorruption, JournalError
from repro.hypergraph import DynamicHypergraph, MutationBatch
from repro.hypergraph.journal import (
    FSYNC_POLICIES,
    JOURNAL_MAGIC,
    RECORD_HEADER,
    MutationJournal,
    default_fsync_policy,
    default_journal_dir,
    default_snapshot_interval,
    dump_snapshot,
    encode_record,
    parse_snapshot,
    scan_journal,
)
from repro.service import graph_fingerprint
from repro.testing import (
    make_mutable_instance,
    random_mutation_schedule,
    run_crash_recovery_oracle,
)


def small_graph():
    return Hypergraph(
        labels=["A", "C", "A", "A", "B", "C", "A"],
        edges=[{2, 4}, {4, 6}, {0, 1, 2}, {3, 5, 6},
               {0, 1, 4, 6}, {2, 3, 4, 5}],
    )


def sample_batches():
    return [
        MutationBatch(inserts=[(0, 3, 5)], deletes=[1]),
        MutationBatch(deletes=[0], add_vertices=["B"]),
        MutationBatch(inserts=[(2, 7), (4, 5, 6)]),
    ]


def committed_log(batches):
    data = JOURNAL_MAGIC
    for version, batch in enumerate(batches, start=1):
        data += encode_record(version, batch)
    return data


# ---------------------------------------------------------------------------
# Record codec and scan_journal
# ---------------------------------------------------------------------------

class TestScanJournal:
    def test_round_trip(self):
        batches = sample_batches()
        data = committed_log(batches)
        records, valid = scan_journal(data)
        assert valid == len(data)
        assert [(v, b) for _o, v, b in records] == [
            (v, b) for v, b in enumerate(batches, start=1)
        ]

    def test_empty_and_partial_magic_are_fresh(self):
        assert scan_journal(b"") == ([], 0)
        assert scan_journal(JOURNAL_MAGIC[:4]) == ([], 0)
        assert scan_journal(JOURNAL_MAGIC) == ([], len(JOURNAL_MAGIC))

    def test_bad_magic_is_corruption(self):
        with pytest.raises(JournalCorruption, match="magic"):
            scan_journal(b"NOTAJOURNAL" + b"\x00" * 32)

    @pytest.mark.parametrize("keep", ["header", "body"])
    def test_torn_tail_truncates_to_last_boundary(self, keep):
        batches = sample_batches()
        data = committed_log(batches[:2])
        tail = encode_record(3, batches[2])
        cut = 4 if keep == "header" else RECORD_HEADER.size + 3
        records, valid = scan_journal(data + tail[:cut])
        assert valid == len(data)
        assert [v for _o, v, _b in records] == [1, 2]

    def test_corrupt_final_record_is_dropped_like_a_torn_tail(self):
        data = committed_log(sample_batches())
        flipped = data[:-1] + bytes([data[-1] ^ 0xFF])
        records, valid = scan_journal(flipped)
        assert [v for _o, v, _b in records] == [1, 2]
        assert valid < len(data)

    def test_mid_log_bit_flip_is_corruption_not_truncation(self):
        batches = sample_batches()
        prefix = committed_log(batches[:1])
        data = prefix + encode_record(2, batches[1]) + encode_record(
            3, batches[2]
        )
        # Flip a byte inside record 2's body: valid log follows it.
        position = len(prefix) + RECORD_HEADER.size + 2
        damaged = (
            data[:position]
            + bytes([data[position] ^ 0xFF])
            + data[position + 1:]
        )
        with pytest.raises(JournalCorruption, match="mid-log corruption"):
            scan_journal(damaged)

    def test_implausible_length_field_is_corruption(self):
        bad_header = RECORD_HEADER.pack(1 << 30, 0)
        with pytest.raises(JournalCorruption, match="implausible"):
            scan_journal(JOURNAL_MAGIC + bad_header + b"\x00" * 64)

    def test_checksummed_garbage_body_is_corruption(self):
        body = b"not json at all"
        record = RECORD_HEADER.pack(len(body), zlib.crc32(body)) + body
        filler = encode_record(1, sample_batches()[0])
        with pytest.raises(JournalCorruption, match="does not decode"):
            scan_journal(JOURNAL_MAGIC + record + filler)

    def test_version_gap_is_corruption(self):
        batches = sample_batches()
        data = (
            JOURNAL_MAGIC
            + encode_record(1, batches[0])
            + encode_record(3, batches[1])
        )
        with pytest.raises(JournalCorruption, match="sequence is broken"):
            scan_journal(data)


# ---------------------------------------------------------------------------
# Snapshots
# ---------------------------------------------------------------------------

class TestSnapshot:
    def test_round_trip_is_coordinate_identical(self, tmp_path):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        for batch in sample_batches():
            graph.apply(batch)
        path = tmp_path / "snap"
        with open(path, "w", encoding="utf-8") as stream:
            dump_snapshot(graph, stream)
        with open(path, "r", encoding="utf-8") as stream:
            restored = parse_snapshot(stream)
        assert restored.version == graph.version
        assert restored.num_slots == graph.num_slots
        assert graph_fingerprint(restored) == graph_fingerprint(graph)
        # Same next edge id: a post-recovery insert lands on the same
        # slot either side, so journal replay stays coordinate-stable.
        follow_up = MutationBatch(inserts=[(0, 1)])
        ours = restored.apply(follow_up).inserted
        theirs = graph.apply(follow_up).inserted
        assert [
            (m.edge_id, m.signature, m.vertices, m.row) for m in ours
        ] == [
            (m.edge_id, m.signature, m.vertices, m.row) for m in theirs
        ]

    def test_parse_rejects_wrong_header(self):
        import io

        with pytest.raises(JournalCorruption, match="not a graph snapshot"):
            parse_snapshot(io.StringIO("HGSTORE 1\n"))

    def test_parse_rejects_truncated_snapshot(self, tmp_path):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        path = tmp_path / "snap"
        with open(path, "w", encoding="utf-8") as stream:
            dump_snapshot(graph, stream)
        text = path.read_text()
        with pytest.raises(JournalCorruption):
            import io

            parse_snapshot(io.StringIO(text[: len(text) // 2]))


# ---------------------------------------------------------------------------
# MutationJournal lifecycle
# ---------------------------------------------------------------------------

class TestMutationJournal:
    def test_append_recover_round_trip(self, tmp_path):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        journal = MutationJournal(
            str(tmp_path / "wal"), fsync="never", snapshot_interval=2
        )
        journal.attach(graph)
        for batch in sample_batches():
            result = graph.apply(batch)
            journal.append(result.version, batch)
            journal.maybe_snapshot(graph)
        journal.close()

        recovered = MutationJournal(str(tmp_path / "wal")).recover()
        assert recovered is not None
        assert recovered.version == graph.version == 3
        assert graph_fingerprint(recovered.graph) == graph_fingerprint(graph)
        # interval=2 → snapshot at v2; recovery replays only the suffix.
        assert recovered.snapshot_version == 2
        assert recovered.replayed == 1

    def test_recover_fresh_directory_is_none(self, tmp_path):
        assert MutationJournal(str(tmp_path / "wal")).recover() is None

    def test_recover_falls_back_past_damaged_newest_snapshot(self, tmp_path):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        journal = MutationJournal(
            str(tmp_path / "wal"), fsync="never", snapshot_interval=1
        )
        journal.attach(graph)
        for batch in sample_batches():
            result = graph.apply(batch)
            journal.append(result.version, batch)
            journal.maybe_snapshot(graph)
        journal.close()
        newest = journal.snapshot_versions()[-1]
        with open(journal.snapshot_path(newest), "w") as stream:
            stream.write("HGDSNAP 1\ngarbage\n")

        recovered = MutationJournal(str(tmp_path / "wal")).recover()
        assert recovered is not None
        assert recovered.version == graph.version
        assert recovered.snapshot_version < newest
        assert graph_fingerprint(recovered.graph) == graph_fingerprint(graph)

    def test_attach_truncates_torn_tail_and_resumes(self, tmp_path):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        batches = sample_batches()
        journal = MutationJournal(str(tmp_path / "wal"), fsync="never")
        journal.attach(graph)
        for batch in batches[:2]:
            result = graph.apply(batch)
            journal.append(result.version, batch)
        journal.close()
        # Simulate a crash mid-append of record 3.
        torn = encode_record(3, batches[2])[:7]
        with open(journal.journal_path, "ab") as stream:
            stream.write(torn)

        resumed = MutationJournal(str(tmp_path / "wal"))
        recovered = resumed.recover()
        assert recovered.version == 2
        resumed.attach(recovered.graph)
        result = recovered.graph.apply(batches[2])
        resumed.append(result.version, batches[2])
        resumed.close()
        final = MutationJournal(str(tmp_path / "wal")).recover()
        assert final.version == 3
        assert graph_fingerprint(final.graph) == graph_fingerprint(
            recovered.graph
        )

    def test_attach_refuses_version_mismatch(self, tmp_path):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        journal = MutationJournal(str(tmp_path / "wal"), fsync="never")
        journal.attach(graph)
        result = graph.apply(sample_batches()[0])
        journal.append(result.version, sample_batches()[0])
        journal.close()

        stale = DynamicHypergraph.from_hypergraph(small_graph())
        with pytest.raises(JournalError, match="recover\\(\\)"):
            MutationJournal(str(tmp_path / "wal")).attach(stale)

    def test_append_refuses_version_gap(self, tmp_path):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        journal = MutationJournal(str(tmp_path / "wal"), fsync="never")
        journal.attach(graph)
        with pytest.raises(JournalError, match="non-contiguous"):
            journal.append(5, sample_batches()[0])
        journal.close()

    def test_snapshot_pruning_keeps_newest_two(self, tmp_path):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        journal = MutationJournal(
            str(tmp_path / "wal"), fsync="never", snapshot_interval=1
        )
        journal.attach(graph)
        rng = random.Random(5)
        for batch in random_mutation_schedule(rng, small_graph(), steps=5):
            result = graph.apply(batch)
            journal.append(result.version, batch)
            journal.maybe_snapshot(graph)
        journal.close()
        versions = journal.snapshot_versions()
        assert len(versions) == 2
        assert versions[-1] == graph.version

    def test_standing_round_trip(self, tmp_path):
        journal = MutationJournal(str(tmp_path / "wal"))
        entries = [
            {
                "labels": ["A", "B"],
                "edges": [[0, 1]],
                "edge_labels": None,
                "order": [1, 0],
            }
        ]
        journal.save_standing(entries)
        assert journal.load_standing() == entries

    def test_load_standing_rejects_wrong_shape(self, tmp_path):
        journal = MutationJournal(str(tmp_path / "wal"))
        with open(journal.standing_path, "w") as stream:
            json.dump([{"query": "legacy"}], stream)
        with pytest.raises(JournalCorruption, match="standing-query"):
            journal.load_standing()


# ---------------------------------------------------------------------------
# Environment knobs: parse-time validation naming the knob
# ---------------------------------------------------------------------------

class TestKnobs:
    def test_journal_dir_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOURNAL_DIR", raising=False)
        assert default_journal_dir() is None
        with pytest.raises(JournalError, match="REPRO_JOURNAL_DIR"):
            MutationJournal()

    def test_journal_dir_empty_names_the_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_DIR", "   ")
        with pytest.raises(JournalError, match="REPRO_JOURNAL_DIR"):
            default_journal_dir()

    def test_journal_dir_non_directory_names_the_knob(
        self, monkeypatch, tmp_path
    ):
        path = tmp_path / "file"
        path.write_text("x")
        monkeypatch.setenv("REPRO_JOURNAL_DIR", str(path))
        with pytest.raises(JournalError, match="REPRO_JOURNAL_DIR"):
            default_journal_dir()

    def test_fsync_policy_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOURNAL_FSYNC", raising=False)
        assert default_fsync_policy() == "always"
        for policy in FSYNC_POLICIES:
            monkeypatch.setenv("REPRO_JOURNAL_FSYNC", policy.upper())
            assert default_fsync_policy() == policy
        monkeypatch.setenv("REPRO_JOURNAL_FSYNC", "sometimes")
        with pytest.raises(JournalError, match="REPRO_JOURNAL_FSYNC"):
            default_fsync_policy()

    def test_snapshot_interval_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_SNAPSHOT_INTERVAL", "7")
        assert default_snapshot_interval() == 7
        for bad in ("zero", "0", "-3"):
            monkeypatch.setenv("REPRO_JOURNAL_SNAPSHOT_INTERVAL", bad)
            with pytest.raises(
                JournalError, match="REPRO_JOURNAL_SNAPSHOT_INTERVAL"
            ):
                default_snapshot_interval()

    def test_constructor_validates_explicit_knobs(self, tmp_path):
        with pytest.raises(JournalError, match="fsync"):
            MutationJournal(str(tmp_path / "wal"), fsync="sometimes")
        with pytest.raises(JournalError, match="snapshot interval"):
            MutationJournal(str(tmp_path / "wal"), snapshot_interval=0)


# ---------------------------------------------------------------------------
# The crash-point recovery oracle
# ---------------------------------------------------------------------------

def test_crash_recovery_oracle_seeded_trials():
    rng = random.Random(20260807)
    trials = 0
    while trials < 3:
        instance = make_mutable_instance(rng)
        if instance is None:
            continue
        data, query, _edges = instance
        schedule = random_mutation_schedule(rng, data, steps=5)
        divergence = run_crash_recovery_oracle(
            data, schedule, snapshot_interval=2, query=query
        )
        assert divergence is None, divergence
        trials += 1
