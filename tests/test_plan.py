"""Unit tests for execution-plan precomputation."""

from __future__ import annotations

from collections import Counter

from repro.core.plan import build_execution_plan


class TestStepPlans:
    def test_paper_order_structure(self, fig1_query):
        """Order (0, 1, 2) = ({u2,u4}, {u0,u1,u2}, {u0,u1,u3,u4})."""
        plan = build_execution_plan(fig1_query, (0, 1, 2))
        assert plan.num_steps == 3

        step0, step1, step2 = plan.steps
        assert step0.signature == ("A", "B")
        assert step0.adjacent_prev == ()
        assert step0.anchors == ()
        assert step0.expected_num_vertices == 2

        assert step1.signature == ("A", "A", "C")
        assert step1.adjacent_prev == (0,)
        assert step1.nonadjacent_prev == ()
        # Shared vertex u2; its degree in the partial query before this
        # step is 1 (only edge 0).
        assert [(a.query_vertex, a.required_degree) for a in step1.anchors] == [
            (2, 1)
        ]
        assert step1.expected_num_vertices == 4

        assert step2.signature == ("A", "A", "B", "C")
        assert set(step2.adjacent_prev) == {0, 1}
        # u4 from edge 0 (degree 1), u0 and u1 from edge 1 (degree 1 each).
        anchor_vertices = sorted(a.query_vertex for a in step2.anchors)
        assert anchor_vertices == [0, 1, 4]
        assert step2.expected_num_vertices == 5

    def test_query_profiles(self, fig1_query):
        plan = build_execution_plan(fig1_query, (0, 1, 2))
        # Step 0 profile: u2 is in steps {0,1} later, but at step 0 only
        # incidence up to step 0 counts.
        assert plan.steps[0].query_profile == Counter(
            {("A", frozenset({0})): 1, ("B", frozenset({0})): 1}
        )
        # Step 2 ({u0,u1,u3,u4}): u0 in steps 1,2; u1 in 1,2; u3 in 2; u4
        # in 0,2.
        assert plan.steps[2].query_profile == Counter(
            {
                ("A", frozenset({1, 2})): 1,
                ("C", frozenset({1, 2})): 1,
                ("A", frozenset({2})): 1,
                ("B", frozenset({0, 2})): 1,
            }
        )

    def test_nonadjacent_prev(self):
        from repro import Hypergraph

        query = Hypergraph(
            ["A", "A", "A", "A", "A"],
            [{0, 1}, {1, 2}, {3, 4, 2}],
        )
        # Under order (0, 1, 2), step 2 ({2,3,4}) is adjacent to step 1
        # but not step 0.
        plan = build_execution_plan(query, (0, 1, 2))
        assert plan.steps[2].adjacent_prev == (1,)
        assert plan.steps[2].nonadjacent_prev == (0,)

    def test_vertex_arrival_covers_all_vertices(self, fig1_query):
        plan = build_execution_plan(fig1_query, (0, 1, 2))
        assert sorted(plan.vertex_arrival) == list(range(5))

    def test_describe_mentions_operators(self, fig1_query):
        plan = build_execution_plan(fig1_query, (0, 1, 2))
        text = plan.describe()
        assert "SCAN" in text
        assert "EXPAND" in text
        assert "SINK" in text
