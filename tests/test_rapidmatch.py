"""Tests for the RapidMatch-H join-based baseline."""

from __future__ import annotations

import random

import pytest

from repro import Hypergraph, TimeoutExceeded
from repro.baselines import RapidMatchHMatcher, brute_force
from repro.errors import QueryError
from repro.hypergraph.generators import generate_hypergraph
from repro.hypergraph.sampling import QuerySetting, sample_query


class TestFig1:
    def test_count(self, fig1_data, fig1_query):
        matcher = RapidMatchHMatcher(fig1_data)
        assert matcher.count(fig1_query) == 2

    def test_hyperedge_tuples(self, fig1_data, fig1_query):
        matcher = RapidMatchHMatcher(fig1_data)
        assert matcher.hyperedge_embeddings(fig1_query) == {
            (0, 2, 4),
            (1, 3, 5),
        }

    def test_exact_edge_semantics(self):
        """A 2-ary query edge must not match inside a 3-ary data edge."""
        data = Hypergraph(["A", "A", "A"], [{0, 1, 2}])
        query = Hypergraph(["A", "A"], [{0, 1}])
        matcher = RapidMatchHMatcher(data)
        assert matcher.count(query) == 0


class TestBehaviour:
    def test_empty_query_raises(self, fig1_data):
        with pytest.raises(QueryError):
            RapidMatchHMatcher(fig1_data).run(Hypergraph(["A"], []))

    def test_timeout(self):
        rng = random.Random(1)
        data = generate_hypergraph(100, 700, 1, 2.5, 4, rng)
        matcher = RapidMatchHMatcher(data)
        label = data.label(0)
        query = Hypergraph([label] * 4, [{0, 1}, {1, 2}, {2, 3}])
        with pytest.raises(TimeoutExceeded):
            matcher.run(query, time_budget=0.0)

    def test_vertex_count_matches_brute_force(self):
        rng = random.Random(2)
        for _ in range(8):
            data = generate_hypergraph(12, 10, 2, 2.4, 4, rng)
            if data.num_edges < 2:
                continue
            try:
                query = sample_query(
                    data, QuerySetting("t", 2, 2, 10), rng, max_attempts=40
                )
            except Exception:
                continue
            reference = brute_force(data, query)
            matcher = RapidMatchHMatcher(data)
            result = matcher.run(query, collect_hyperedge_tuples=True)
            assert result.vertex_embeddings == reference.vertex_embeddings
            assert result.hyperedge_tuples == reference.hyperedge_tuples

    def test_compile_reports_candidates(self, fig1_data, fig1_query):
        matcher = RapidMatchHMatcher(fig1_data)
        join_query = matcher.compile(fig1_query)
        # 5 lower + 3 upper variables.
        assert join_query.num_variables == 8
        assert len(join_query.injective_groups) == 2
