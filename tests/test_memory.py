"""Tests for scheduler memory accounting (Exp-5 substrate)."""

from __future__ import annotations

import random

import pytest

from repro import HGMatch
from repro.hypergraph.generators import generate_hypergraph
from repro.hypergraph.sampling import query_setting, sample_query
from repro.parallel import (
    entry_units_per_partial,
    measure_memory,
    theoretical_memory_bound,
)


@pytest.fixture(scope="module")
def heavy_instance():
    """A low-selectivity instance (one label) with many embeddings."""
    rng = random.Random(41)
    data = generate_hypergraph(60, 500, 1, 2.2, 3, rng)
    query = sample_query(data, query_setting("q2"), rng)
    return HGMatch(data), query


class TestMeasurement:
    def test_strategies_agree_on_counts(self, heavy_instance):
        engine, query = heavy_instance
        task = measure_memory(engine, query, "task")
        bfs = measure_memory(engine, query, "bfs")
        assert task.embeddings == bfs.embeddings

    def test_bfs_peak_dominates_task_peak(self, heavy_instance):
        engine, query = heavy_instance
        task = measure_memory(engine, query, "task")
        bfs = measure_memory(engine, query, "bfs")
        if bfs.embeddings > 20:
            assert bfs.peak_partial_embeddings > task.peak_partial_embeddings

    def test_parallel_task_strategy(self, heavy_instance):
        engine, query = heavy_instance
        parallel = measure_memory(engine, query, "task", workers=2)
        sequential = measure_memory(engine, query, "task")
        assert parallel.embeddings == sequential.embeddings

    def test_unknown_strategy_rejected(self, heavy_instance):
        engine, query = heavy_instance
        with pytest.raises(ValueError):
            measure_memory(engine, query, "dfs-ish")

    def test_rows(self, heavy_instance):
        engine, query = heavy_instance
        row = measure_memory(engine, query, "task").as_row()
        assert {"strategy", "embeddings", "peak_partials", "peak_units"} <= set(row)


class TestBound:
    def test_task_peak_within_theorem_vi1_bound(self, heavy_instance):
        """Theorem VI.1: the LIFO scheduler's retained memory stays below
        a_q × |E(q)|² × |E(H)| entry units."""
        engine, query = heavy_instance
        task = measure_memory(engine, query, "task")
        bound = theoretical_memory_bound(query, engine.data)
        assert task.peak_entry_units <= bound

    def test_bound_scales_with_workers(self, heavy_instance):
        engine, query = heavy_instance
        assert theoretical_memory_bound(
            query, engine.data, workers=4
        ) == 4 * theoretical_memory_bound(query, engine.data)

    def test_entry_units(self, fig1_query):
        assert entry_units_per_partial(fig1_query) == 2 + 3 + 4
