"""Elastic pool membership: live grow/shrink and registry-fed failover.

The acceptance bar for the elastic runtime: a pool grown from K=1 to
K=2 mid-lifetime (``admit``) and a pool that lost and readmitted a
replica both produce counts **bit-identical** to a static run; a
drained replica leaves the pool serving at reduced K; draining the
*last* replica of a shard retires the shard — its rows are recut onto
the surviving shards via REBALANCE — and counts still match; and a
worker that stops heartbeating is evicted by the registry, which the
coordinator turns into mid-job failover well before its I/O timeout.
"""

from __future__ import annotations

import random
import socket
import threading
import time

import pytest

from repro import HGMatch
from repro.errors import SchedulerError
from repro.hypergraph import INDEX_BACKENDS
from repro.parallel import (
    Announcer,
    NetShardExecutor,
    ShardWorker,
    WorkerRegistry,
    spawn_local_cluster,
    transport,
)
from repro.testing import make_random_instance


@pytest.fixture(scope="module")
def elastic_instance():
    """One deterministic (data, query) pair with expected counts per
    backend — every elastic reconfiguration must reproduce these."""
    rng = random.Random(987)
    instances = []
    while len(instances) < 1:
        instance = make_random_instance(rng)
        if instance is not None:
            instances.append(instance)
    data, query = instances[0]
    expected = {}
    for backend in INDEX_BACKENDS:
        engine = HGMatch(data, index_backend=backend)
        try:
            expected[backend] = engine.count(query)
        finally:
            engine.close()
    return data, query, expected


def _spare_worker(data, shard_id, num_shards, backend, num_replicas=2,
                  replica_id=1):
    """Boot one in-thread shard worker (the newcomer to admit)."""
    worker = ShardWorker(
        data, shard_id, num_shards, index_backend=backend,
        replica_id=replica_id, num_replicas=num_replicas,
    )
    address = worker.bind()
    thread = threading.Thread(
        target=worker.serve_forever, kwargs={"max_sessions": 1},
        daemon=True,
    )
    thread.start()
    return worker, address


# ----------------------------------------------------------------------
# Grow: K=1 -> K=2 mid-lifetime
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_admit_grows_k1_pool_to_k2_with_parity(elastic_instance, backend):
    """The headline acceptance gate: admit replica-1 workers into a
    running K=1 pool; K becomes 2 and counts stay bit-identical on
    every index backend."""
    data, query, expected = elastic_instance
    engine = HGMatch(data, index_backend=backend)
    cluster = spawn_local_cluster(data, 2, index_backend=backend)
    executor = NetShardExecutor(
        addresses=list(cluster.addresses), index_backend=backend,
    )
    spares = []
    try:
        assert executor.run(engine, query).embeddings == expected[backend]
        assert executor.num_replicas == 1
        for shard_id in range(2):
            worker, address = _spare_worker(
                data, shard_id, 2, backend
            )
            spares.append(worker)
            descriptor = executor.admit(address)
            assert descriptor.shard_id == shard_id
            assert descriptor.replica_id == 1
        assert executor.num_replicas == 2
        assert executor.run(engine, query).embeddings == expected[backend]
        # The grown replicas are real failover targets: drop replica 0
        # of each shard and the spares carry the whole job.
        executor.drain(0, replica_id=0)
        executor.drain(1, replica_id=0)
        assert executor.run(engine, query).embeddings == expected[backend]
    finally:
        executor.close()
        for worker in spares:
            worker.close()
        cluster.close()
        engine.close()


def test_admit_readmits_a_lost_replica(elastic_instance):
    """Lose a replica (killed process), fail over, respawn it and fold
    it back in with ``admit`` — counts match before, during, after."""
    data, query, expected = elastic_instance
    backend = "bitset"
    engine = HGMatch(data, index_backend=backend)
    cluster = spawn_local_cluster(
        data, 2, index_backend=backend, num_replicas=2
    )
    executor = NetShardExecutor(
        addresses=list(cluster.addresses),
        num_replicas=2,
        index_backend=backend,
    )
    try:
        assert executor.run(engine, query).embeddings == expected[backend]
        # Lose shard 0 replica 0 for real (process killed).
        cluster.kill_member(0, 0)
        executor.drain(0, replica_id=0)  # reads nothing; removes it
        assert executor.run(engine, query).embeddings == expected[backend]
        # Respawn the slot and readmit the fresh worker.
        address = cluster.respawn(0, 0)
        descriptor = executor.admit(address)
        assert (descriptor.shard_id, descriptor.replica_id) == (0, 0)
        assert executor.run(engine, query).embeddings == expected[backend]
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_admit_upgrades_newcomer_to_rebalanced_layout(elastic_instance):
    """A newcomer cut under the spawn placement must be REBALANCE-
    upgraded before joining a pool that runs a rebalanced layout."""
    data, query, expected = elastic_instance
    backend = "bitset"
    engine = HGMatch(data, index_backend=backend)
    cluster = spawn_local_cluster(data, 2, index_backend=backend)
    executor = NetShardExecutor(
        addresses=list(cluster.addresses), index_backend=backend,
    )
    spare = None
    try:
        first = executor.run(engine, query)
        assert first.embeddings == expected[backend]
        stats = sorted(first.worker_stats, key=lambda s: s.worker_id)
        stats[0].cpu_time, stats[1].cpu_time = 4.0, 1.0
        if executor.rebalance(stats) == 0:
            pytest.skip("synthetic skew did not move any shard")
        assert executor._sharding_label.startswith("rebalanced-")
        spare, address = _spare_worker(data, 0, 2, backend)
        descriptor = executor.admit(address)
        # The admitted worker echoes the *pool's* label, not its
        # spawn-mode one: it was upgraded during admission.
        assert descriptor.sharding == executor._sharding_label
        assert executor.run(engine, query).embeddings == expected[backend]
    finally:
        executor.close()
        if spare is not None:
            spare.close()
        cluster.close()
        engine.close()


def test_admit_refuses_bad_newcomers(elastic_instance):
    data, query, expected = elastic_instance
    backend = "bitset"
    engine = HGMatch(data, index_backend=backend)
    executor = NetShardExecutor(num_shards=2, index_backend=backend)
    try:
        with pytest.raises(SchedulerError, match="no live pool"):
            executor.admit(("127.0.0.1", 1))
        assert executor.run(engine, query).embeddings == expected[backend]
        # Duplicate identity: a fresh worker claiming slot (0, 0),
        # which the pool already holds.
        impostor, address = _spare_worker(
            data, 0, 2, backend, num_replicas=1, replica_id=0,
        )
        try:
            with pytest.raises(SchedulerError, match="both announced"):
                executor.admit(address)
        finally:
            impostor.close()
        # Dead address: connection refused surfaces as SchedulerError.
        with pytest.raises(SchedulerError, match="could not connect"):
            executor.admit(("127.0.0.1", 1))
        # Failed admissions leave the pool fully serviceable.
        assert executor.run(engine, query).embeddings == expected[backend]
    finally:
        executor.close()
        engine.close()


# ----------------------------------------------------------------------
# Shrink: drain a replica, retire a shard
# ----------------------------------------------------------------------


def test_drain_to_retire_recuts_ranges_with_parity(elastic_instance):
    """Draining the last replica of a shard retires it: the pool recuts
    the retired shard's rows onto the survivors (REBALANCE) and counts
    stay bit-identical with fewer active shards."""
    data, query, expected = elastic_instance
    backend = "merge"
    engine = HGMatch(data, index_backend=backend)
    executor = NetShardExecutor(num_shards=3, index_backend=backend)
    try:
        assert executor.run(engine, query).embeddings == expected[backend]
        label = executor.drain(1)
        assert label is not None and label.startswith("rebalanced-")
        assert executor._retired == {1}
        assert executor._active_shards() == [0, 2]
        assert executor.run(engine, query).embeddings == expected[backend]
        # Retire another; a single survivor still carries the job.
        assert executor.drain(2) is not None
        assert executor.run(engine, query).embeddings == expected[backend]
        # The last member of the pool is not drainable.
        with pytest.raises(SchedulerError, match="last live member"):
            executor.drain(0)
        # A retired shard's identity cannot come back.
        with pytest.raises(SchedulerError, match="retired"):
            executor.admit(executor._cluster.addresses[1])
    finally:
        executor.close()
        engine.close()


def test_drain_unknown_member_errors(elastic_instance):
    data, query, _expected = elastic_instance
    engine = HGMatch(data, index_backend="bitset")
    executor = NetShardExecutor(num_shards=2, index_backend="bitset")
    try:
        with pytest.raises(SchedulerError, match="no live pool"):
            executor.drain(0)
        executor.run(engine, query)
        with pytest.raises(SchedulerError, match="outside"):
            executor.drain(7)
        with pytest.raises(SchedulerError, match="not a live member"):
            executor.drain(0, replica_id=1)
    finally:
        executor.close()
        engine.close()


# ----------------------------------------------------------------------
# Registry-fed failover: eviction beats the I/O timeout
# ----------------------------------------------------------------------


class _WedgedWorker:
    """A worker that handshakes honestly and then never answers: the
    severed-but-connected failure the registry's heartbeat eviction
    exists to catch (the TCP connection stays up, so only the missing
    heartbeats reveal it)."""

    def __init__(self, data, backend, num_replicas=2):
        # Borrow a real worker's shard purely for its descriptor — the
        # handshake must be genuine for the coordinator to accept it.
        self._template = ShardWorker(
            data, 0, 1, index_backend=backend,
            replica_id=0, num_replicas=num_replicas,
        )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(1)
        self.address = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def hello(self):
        address, descriptor, seed = self._template._announce_hello()
        return (self.address, descriptor, seed)

    def _serve(self):
        try:
            self._listener.settimeout(0.2)
            conn = None
            while conn is None and not self._stop.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
            if conn is None:
                return
            with conn:
                conn.sendall(transport.encode_frame(
                    transport.MSG_HELLO, self._template._hello_body()
                ))
                conn.settimeout(0.2)
                while not self._stop.is_set():
                    try:
                        if conn.recv(65536) == b"":
                            return  # coordinator hung up
                    except socket.timeout:
                        continue
                    except OSError:
                        return
        finally:
            self._listener.close()

    def close(self):
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._template.close()


def test_registry_eviction_unwedges_a_silent_worker(elastic_instance):
    """Gate (b)'s second half: a worker that wedges (connection open,
    replies and heartbeats both stop) is evicted by the registry, and
    the coordinator fails the LEVEL over to the live replica long
    before the 60s I/O timeout — the job never wedges."""
    data, query, expected = elastic_instance
    backend = "bitset"
    engine = HGMatch(data, index_backend=backend)
    with WorkerRegistry(
        heartbeat_interval=0.1, miss_budget=3
    ) as registry:
        wedged = _WedgedWorker(data, backend, num_replicas=2)
        announcer = Announcer(
            registry.address, wedged.hello, interval=0.1,
            rng=random.Random(1),
        )
        announcer.start()
        real = ShardWorker(
            data, 0, 1, index_backend=backend,
            replica_id=1, num_replicas=2,
            announce=registry.address, heartbeat_interval=0.1,
        )
        real.bind()
        real_thread = threading.Thread(
            target=real.serve_forever, daemon=True
        )
        real_thread.start()
        executor = None
        try:
            executor = NetShardExecutor.from_registry(
                registry, 1, num_replicas=2,
                index_backend=backend, io_timeout=60.0,
                wait_timeout=15.0,
            )
            # The wedged worker is replica 0 — it receives the first
            # LEVEL and sits on it.  Stop its heartbeats shortly after
            # the job starts; eviction must unwedge the job.
            timer = threading.Timer(0.3, announcer.stop)
            timer.start()
            started = time.monotonic()
            result = executor.run(engine, query)
            elapsed = time.monotonic() - started
            timer.cancel()
            assert result.embeddings == expected[backend]
            assert elapsed < 30.0, (
                f"job took {elapsed:.1f}s — eviction did not beat the "
                f"I/O timeout"
            )
            # The wedged identity is gone from the member grid.
            assert executor._members[0].get(0) is None
        finally:
            if executor is not None:
                executor.close()
            announcer.stop()
            wedged.close()
            real.close()
            engine.close()


# ----------------------------------------------------------------------
# Discovery vs drain: re-ANNOUNCE while the shard is being drained
# ----------------------------------------------------------------------


def test_reannounce_during_drain_supersedes_and_readmits(elastic_instance):
    """A worker re-ANNOUNCing while its shard is being drained must not
    confuse either side: the registry's latest-wins record survives the
    drain untouched (discovery is a separate one-way channel), the
    drained pool keeps answering exactly, and the re-announced address
    is admittable right back into the pool."""
    data, query, expected = elastic_instance
    backend = "bitset"
    engine = HGMatch(data, index_backend=backend)
    cluster = spawn_local_cluster(
        data, 2, index_backend=backend, num_replicas=2
    )
    executor = NetShardExecutor(
        addresses=list(cluster.addresses),
        num_replicas=2,
        index_backend=backend,
    )
    spare = None
    announcer = None
    with WorkerRegistry(heartbeat_interval=0.05) as registry:
        try:
            assert (
                executor.run(engine, query).embeddings == expected[backend]
            )
            # The replacement for shard 0 replica 1 announces itself (a
            # supervised restart at a fresh port) and keeps announcing
            # while the coordinator drains the old member of the same
            # identity.
            spare, spare_address = _spare_worker(data, 0, 2, backend)
            announcer = Announcer(
                registry.address, spare._announce_hello, interval=0.05,
                rng=random.Random(5),
            )
            announcer.start()
            assert announcer.announced.wait(5.0)
            executor.drain(0, replica_id=1)
            assert executor.run(engine, query).embeddings == expected[backend]
            # The registry record was superseded by the re-announce and
            # the drain never touched it: latest wins, and it points at
            # the spare, not the drained member.
            record = registry.record(0, replica_id=1)
            assert record is not None
            assert tuple(record.address) == tuple(spare_address)
            # The discovered address folds straight back into the pool.
            descriptor = executor.admit(spare_address)
            assert (descriptor.shard_id, descriptor.replica_id) == (0, 1)
            assert executor.run(engine, query).embeddings == expected[backend]
        finally:
            if announcer is not None:
                announcer.stop()
            executor.close()
            if spare is not None:
                spare.close()
            cluster.close()
            engine.close()


def test_retired_shard_ids_are_refused_readmission(elastic_instance):
    """The exact refusal for a retired identity is pinned: retirement
    recuts the shard's rows onto the survivors, so readmitting its id
    would double-own rows — the error must say so."""
    data, query, expected = elastic_instance
    backend = "bitset"
    engine = HGMatch(data, index_backend=backend)
    executor = NetShardExecutor(num_shards=2, index_backend=backend)
    spare = None
    try:
        assert executor.run(engine, query).embeddings == expected[backend]
        assert executor.drain(1) is not None  # last replica: retires it
        assert executor.run(engine, query).embeddings == expected[backend]
        spare, spare_address = _spare_worker(
            data, 1, 2, backend, num_replicas=1, replica_id=0
        )
        with pytest.raises(
            SchedulerError,
            match=r"cannot admit a worker for retired shard 1: its "
                  r"rows were recut onto the surviving shards",
        ):
            executor.admit(spare_address)
    finally:
        executor.close()
        if spare is not None:
            spare.close()
        engine.close()


# ----------------------------------------------------------------------
# Catch-up: stale workers rejoin a mutated pool (§2.10)
# ----------------------------------------------------------------------


def _rebuild_count(engine, query, backend):
    """Count on a fresh engine over the mutated graph's dense snapshot."""
    oracle = HGMatch(engine.data.to_hypergraph(), index_backend=backend)
    try:
        return oracle.count(query)
    finally:
        oracle.close()


def test_respawned_replica_rejoins_via_catchup_batches(elastic_instance):
    """Kill a replica, mutate the graph, respawn the slot from its
    spawn-time data: the newcomer announces a stale graph version and
    the handshake gate streams it the missed batches (CATCHUP, §2.10)
    instead of refusing — counts stay bit-identical throughout."""
    from repro.testing import random_mutation_schedule

    data, query, expected = elastic_instance
    backend = "merge"
    engine = HGMatch(data, index_backend=backend)
    cluster = spawn_local_cluster(
        data, 2, index_backend=backend, num_replicas=2
    )
    try:
        executor = engine.net_executor(
            hosts=list(cluster.addresses), replicas=2
        )
        assert executor.run(engine, query).embeddings == expected[backend]
        cluster.kill_member(0, 0)
        executor.drain(0, replica_id=0)
        # Mutate while the slot is empty: the eventual respawn rebuilds
        # from the spawn-time graph and comes back stale.
        rng = random.Random(31)
        result = None
        for batch in random_mutation_schedule(rng, data, steps=3):
            result = engine.apply_mutations(batch)
        assert result is not None and result.version == 3
        oracle = _rebuild_count(engine, query, backend)
        assert executor.run(engine, query).embeddings == oracle
        address = cluster.respawn(0, 0)
        descriptor = executor.admit(address)
        assert (descriptor.shard_id, descriptor.replica_id) == (0, 0)
        # The returned descriptor is the post-catch-up re-validation:
        # the newcomer is *at* the engine's version, not merely admitted.
        assert descriptor.graph_version == result.version
        assert descriptor.graph_edges == engine.data.num_edges
        assert executor.run(engine, query).embeddings == oracle
    finally:
        engine.close()
        cluster.close()


def test_respawned_replica_rejoins_via_catchup_snapshot(elastic_instance):
    """Same rejoin, but the retained batch suffix has aged out: the
    gate falls back to shipping a full snapshot with the placement
    label so the worker recuts its shard from scratch."""
    from repro.testing import random_mutation_schedule

    data, query, expected = elastic_instance
    backend = "bitset"
    engine = HGMatch(data, index_backend=backend)
    cluster = spawn_local_cluster(
        data, 2, index_backend=backend, num_replicas=2
    )
    try:
        executor = engine.net_executor(
            hosts=list(cluster.addresses), replicas=2
        )
        assert executor.run(engine, query).embeddings == expected[backend]
        cluster.kill_member(1, 1)
        executor.drain(1, replica_id=1)
        rng = random.Random(47)
        result = None
        for batch in random_mutation_schedule(rng, data, steps=2):
            result = engine.apply_mutations(batch)
        # Age out the retained suffix: batch replay is now impossible,
        # only the snapshot route remains.
        engine.data._history.clear()
        assert engine.data.batches_since(0) is None
        oracle = _rebuild_count(engine, query, backend)
        address = cluster.respawn(1, 1)
        descriptor = executor.admit(address)
        assert (descriptor.shard_id, descriptor.replica_id) == (1, 1)
        assert descriptor.graph_version == result.version
        assert executor.run(engine, query).embeddings == oracle
    finally:
        engine.close()
        cluster.close()
