"""Deterministic fault injection: the chaos harness and the failover
matrix it drives.

The unit half pins the :class:`~repro.parallel.chaos.FaultPlan`
semantics (frame counting, single-use faults, pickling without
killers, the version-byte garble).  The integration half is the
robustness contract of the replicated socket runtime: for every fault
the plan can express — sever, garble, kill, slow replica, dropped
reply — a 2-replica pool must finish the job with counts
**bit-identical** to the unfaulted run, and losing the *last* replica
of a range must fail fast with a clean :class:`SchedulerError`, never
a hang.  Faults are pinned to protocol frame positions, so every test
reproduces the same failure at the same LEVEL on every run.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro import HGMatch
from repro.errors import SchedulerError
from repro.hypergraph import INDEX_BACKENDS
from repro.parallel import FaultPlan, NetShardExecutor, spawn_local_cluster
from repro.parallel.chaos import ChaosSeveredError, ChaosSocket
from repro.testing import make_random_instance


@pytest.fixture(scope="module")
def chaos_instance():
    """One deterministic (data, query) pair with its expected counts
    per backend — computed once; every fault scenario must reproduce
    these numbers exactly."""
    rng = random.Random(987)
    instances = []
    while len(instances) < 1:
        instance = make_random_instance(rng)
        if instance is not None:
            instances.append(instance)
    data, query = instances[0]
    expected = {}
    for backend in INDEX_BACKENDS:
        engine = HGMatch(data, index_backend=backend)
        try:
            expected[backend] = engine.count(query)
        finally:
            engine.close()
    return data, query, expected


# ----------------------------------------------------------------------
# FaultPlan / ChaosSocket units
# ----------------------------------------------------------------------


class _RecordingSock:
    """A sendall sink standing in for a real socket."""

    def __init__(self):
        self.frames = []
        self.closed = False

    def sendall(self, data):
        self.frames.append(bytes(data))

    def close(self):
        self.closed = True


def test_fault_plan_validates_and_reprs():
    plan = FaultPlan(seed=7)
    plan.sever(0, after_frames=2)
    plan.drop_reply(1, after_frames=3)
    assert "faults=2" in repr(plan) and "pending=2" in repr(plan)
    with pytest.raises(ValueError, match="1-based"):
        plan.sever(0, after_frames=0)
    with pytest.raises(ValueError, match="role"):
        plan.sever(0, after_frames=1, role="bystander")
    with pytest.raises(ValueError, match="role"):
        plan.wrap(_RecordingSock(), "bystander")
    # The seeded rng is reproducible harness state.
    assert FaultPlan(seed=5).rng.random() == random.Random(5).random()


def test_fault_plan_pickles_without_killers():
    plan = FaultPlan(seed=3)
    plan.kill_worker(1, 0, after_frames=2)
    plan.arm_killer(1, 0, lambda: None)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone._killers == {}
    assert [f.kind for f in clone.faults] == ["kill"]
    assert clone.seed == 3


def test_frames_count_per_connection_and_faults_fire_once():
    plan = FaultPlan()
    plan.drop_reply(0, 0, after_frames=2)
    raw_a = _RecordingSock()
    raw_b = _RecordingSock()
    sock_a = plan.wrap(raw_a, "worker", 0, 0)
    sock_b = plan.wrap(raw_b, "worker", 0, 1)  # different replica
    frame = b"\x01\x00\x00\x00\x01X"
    for sock in (sock_a, sock_b):
        sock.sendall(frame)
        sock.sendall(frame)  # frame 2: dropped only on (0, 0)
        sock.sendall(frame)
    assert len(raw_a.frames) == 2  # frame 2 vanished, fault consumed
    assert len(raw_b.frames) == 3  # wrong replica: untouched
    assert sock_a.frames_sent == 3
    assert all(f.consumed for f in plan.faults)


def test_garble_flips_exactly_the_version_byte():
    plan = FaultPlan()
    plan.garble(0, after_frames=2, role="worker")
    raw = _RecordingSock()
    sock = plan.wrap(raw, "worker", 0, 0)
    frame = b"\x02\x00\x00\x00\x01H"  # u32 len | version | kind
    sock.sendall(frame)
    sock.sendall(frame)
    clean, garbled = raw.frames
    assert clean == frame
    assert garbled[4] == frame[4] ^ 0xFF
    assert garbled[:4] == frame[:4] and garbled[5:] == frame[5:]


def test_sever_closes_the_socket_and_raises_oserror():
    plan = FaultPlan()
    plan.sever(1, after_frames=1)
    raw = _RecordingSock()
    sock = plan.wrap(raw, "coordinator")
    sock.bind_endpoint(1, 0)  # identity learned post-handshake
    with pytest.raises(ChaosSeveredError):
        sock.sendall(b"xxxx")
    assert raw.closed and raw.frames == []


def test_unarmed_kill_degrades_to_sever_after_sending():
    plan = FaultPlan()
    plan.kill_worker(0, 0, after_frames=1)
    raw = _RecordingSock()
    sock = plan.wrap(raw, "coordinator", 0, 0)
    with pytest.raises(OSError):
        sock.sendall(b"frame")
    assert raw.frames == [b"frame"]  # the frame went out first
    assert raw.closed


def test_unbound_wrapper_passes_frames_through():
    plan = FaultPlan()
    plan.sever(0, after_frames=1)
    raw = _RecordingSock()
    sock = plan.wrap(raw, "coordinator")  # identity never bound
    sock.sendall(b"frame")
    assert raw.frames == [b"frame"]
    assert isinstance(sock, ChaosSocket)
    assert not plan.faults[0].consumed


# ----------------------------------------------------------------------
# The failover matrix (2-replica pools, exact counts under faults)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_kill_worker_mid_level_fails_over(chaos_instance, backend):
    """The acceptance scenario: kill a worker process right after the
    first LEVEL lands on it; the spare replica must finish the job with
    bit-identical counts on every index backend."""
    data, query, expected = chaos_instance
    engine = HGMatch(data, index_backend=backend)
    plan = FaultPlan(seed=11)
    plan.kill_worker(0, 0, after_frames=2)  # frame 1=JOB, 2=LEVEL 0
    cluster = spawn_local_cluster(
        data, 2, index_backend=backend, num_replicas=2
    )
    plan.arm_killer(0, 0, lambda: cluster.kill_member(0, 0))
    executor = NetShardExecutor(
        addresses=list(cluster.addresses),
        num_replicas=2,
        index_backend=backend,
        io_timeout=60.0,
        chaos=plan,
    )
    try:
        result = executor.run(engine, query)
        assert result.embeddings == expected[backend]
        assert all(f.consumed for f in plan.faults)
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_sever_mid_level_fails_over(chaos_instance):
    """A severed coordinator connection mid-level (worker survives)
    re-dispatches the in-flight LEVEL to the live replica."""
    data, query, expected = chaos_instance
    engine = HGMatch(data, index_backend="bitset")
    plan = FaultPlan(seed=2)
    plan.sever(1, 0, after_frames=2)
    cluster = spawn_local_cluster(
        data, 2, index_backend="bitset", num_replicas=2
    )
    executor = NetShardExecutor(
        addresses=list(cluster.addresses),
        num_replicas=2,
        index_backend="bitset",
        io_timeout=60.0,
        chaos=plan,
    )
    try:
        assert executor.run(engine, query).embeddings == expected["bitset"]
        assert all(f.consumed for f in plan.faults)
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_garbled_frame_fails_over(chaos_instance):
    """A corrupted LEVEL frame makes the worker reject the session (it
    must never guess); the coordinator treats the lost session like any
    disconnect and fails over."""
    data, query, expected = chaos_instance
    engine = HGMatch(data, index_backend="merge")
    plan = FaultPlan(seed=4)
    plan.garble(0, 0, after_frames=2)
    cluster = spawn_local_cluster(
        data, 2, index_backend="merge", num_replicas=2
    )
    executor = NetShardExecutor(
        addresses=list(cluster.addresses),
        num_replicas=2,
        index_backend="merge",
        io_timeout=60.0,
        chaos=plan,
    )
    try:
        assert executor.run(engine, query).embeddings == expected["merge"]
        assert all(f.consumed for f in plan.faults)
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_dropped_reply_hits_deadline_then_fails_over(chaos_instance):
    """A swallowed reply (wedged worker: connection up, silence) trips
    the per-frame deadline; the level is re-dispatched to the spare and
    counts stay exact."""
    data, query, expected = chaos_instance
    engine = HGMatch(data, index_backend="bitset")
    plan = FaultPlan(seed=6)
    plan.drop_reply(1, 0, after_frames=2)  # frame 1=HELLO, 2=reply
    cluster = spawn_local_cluster(
        data, 2, index_backend="bitset", num_replicas=2, chaos=plan
    )
    executor = NetShardExecutor(
        addresses=list(cluster.addresses),
        num_replicas=2,
        index_backend="bitset",
        io_timeout=1.5,
        chaos=plan,
    )
    try:
        assert executor.run(engine, query).embeddings == expected["bitset"]
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_slow_replica_triggers_speculation(chaos_instance):
    """A straggling replica (delayed reply) makes the coordinator
    speculatively re-dispatch the level to an idle spare; whichever
    reply lands first wins and the duplicate is discarded — counts are
    exact either way."""
    data, query, expected = chaos_instance
    plan = FaultPlan(seed=9)
    plan.slow_reply(0, 0, after_frames=2, seconds=1.0)
    engine = HGMatch(data, index_backend="bitset")
    executor = NetShardExecutor(
        num_shards=2,
        num_replicas=2,
        index_backend="bitset",
        speculate_after=0.2,
        io_timeout=60.0,
        chaos=plan,
    )
    try:
        assert executor.run(engine, query).embeddings == expected["bitset"]
    finally:
        executor.close()
        engine.close()


def test_zero_replica_loss_fails_fast(chaos_instance):
    """Killing the only replica of a range mid-level must raise a clean
    SchedulerError naming the shard — no spare, no hang."""
    data, query, _ = chaos_instance
    engine = HGMatch(data, index_backend="bitset")
    plan = FaultPlan(seed=3)
    plan.kill_worker(1, 0, after_frames=2)
    cluster = spawn_local_cluster(data, 2, index_backend="bitset")
    plan.arm_killer(1, 0, lambda: cluster.kill_member(1, 0))
    executor = NetShardExecutor(
        addresses=list(cluster.addresses),
        index_backend="bitset",
        io_timeout=30.0,
        chaos=plan,
    )
    try:
        with pytest.raises(SchedulerError, match="disconnected mid-job"):
            executor.run(engine, query)
    finally:
        executor.close()
        cluster.close()
        engine.close()


# ----------------------------------------------------------------------
# Faults pinned on the REBALANCE path (elastic runtime satellite)
# ----------------------------------------------------------------------
#
# On a 2-replica pool an idle spare (replica 1) receives exactly one
# coordinator frame during a job — the JOB broadcast — so coordinator
# frame 2 on (shard, 1) is deterministically the REBALANCE, regardless
# of how many levels the query runs.  Worker-side, the spare's frame 1
# is its HELLO and frame 2 the rebalance echo.  Every scenario must
# end in a complete recut or a clean degrade (the spare dropped, the
# primary carrying the shard) — and always bit-identical counts.


def _skewed_stats(result):
    stats = sorted(result.worker_stats, key=lambda s: s.worker_id)
    stats[0].cpu_time = 4.0
    for other in stats[1:]:
        other.cpu_time = 1.0
    return stats


@pytest.mark.parametrize("fault", ["sever", "garble"])
def test_rebalance_frame_lost_degrades_cleanly(chaos_instance, fault):
    """Severing (or garbling) the REBALANCE frame to one replica mid-
    recut drops that replica — the pool degrades to K=1 for its shard
    and finishes the recut; counts stay exact."""
    data, query, expected = chaos_instance
    engine = HGMatch(data, index_backend="bitset")
    plan = FaultPlan(seed=13)
    getattr(plan, fault)(0, 1, after_frames=2)  # frame 1=JOB, 2=REBALANCE
    cluster = spawn_local_cluster(
        data, 2, index_backend="bitset", num_replicas=2
    )
    executor = NetShardExecutor(
        addresses=list(cluster.addresses),
        num_replicas=2,
        index_backend="bitset",
        io_timeout=60.0,
        chaos=plan,
    )
    try:
        first = executor.run(engine, query)
        assert first.embeddings == expected["bitset"]
        if executor.rebalance(_skewed_stats(first)) == 0:
            pytest.skip("synthetic skew did not move any shard")
        assert all(f.consumed for f in plan.faults)
        # The faulted spare is out of the grid; its primary survives.
        assert executor._members[0].get(1) is None
        assert executor._members[0].get(0) is not None
        assert executor._sharding_label.startswith("rebalanced-")
        assert executor.run(engine, query).embeddings == expected["bitset"]
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_rebalance_echo_delay_completes_recut(chaos_instance):
    """A straggling rebalance echo (the spare's fresh HELLO delayed a
    second) stalls but never corrupts the recut: the coordinator waits
    it out under the I/O timeout and the full pool keeps both
    replicas."""
    data, query, expected = chaos_instance
    engine = HGMatch(data, index_backend="bitset")
    plan = FaultPlan(seed=17)
    plan.slow_reply(1, 1, after_frames=2, seconds=1.0)  # echo HELLO
    cluster = spawn_local_cluster(
        data, 2, index_backend="bitset", num_replicas=2, chaos=plan
    )
    executor = NetShardExecutor(
        addresses=list(cluster.addresses),
        num_replicas=2,
        index_backend="bitset",
        io_timeout=60.0,
        chaos=plan,
    )
    try:
        first = executor.run(engine, query)
        assert first.embeddings == expected["bitset"]
        if executor.rebalance(_skewed_stats(first)) == 0:
            pytest.skip("synthetic skew did not move any shard")
        # Nothing degraded: the delay was absorbed, both replicas of
        # every shard still serve under the new label.
        assert executor._members[1].get(1) is not None
        assert executor.run(engine, query).embeddings == expected["bitset"]
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_rebalance_frame_lost_on_last_replica_fails_clean(chaos_instance):
    """On a K=1 pool the severed REBALANCE frame has no spare to
    degrade to: the pool must tear down with a clean SchedulerError —
    never a hang, never a half-applied layout."""
    data, query, _expected = chaos_instance
    engine = HGMatch(data, index_backend="bitset")
    # A K=1 primary's frames are 1=JOB then one per LEVEL, so the
    # REBALANCE lands at frame num_steps + 2 — computable up front.
    num_steps = engine.plan(query).num_steps
    plan = FaultPlan(seed=19)
    plan.sever(0, 0, after_frames=num_steps + 2)
    cluster = spawn_local_cluster(data, 2, index_backend="bitset")
    executor = NetShardExecutor(
        addresses=list(cluster.addresses),
        index_backend="bitset",
        io_timeout=30.0,
        chaos=plan,
    )
    try:
        first = executor.run(engine, query)
        stats = _skewed_stats(first)
        try:
            moved = executor.rebalance(stats)
        except SchedulerError as exc:
            assert "no live replica" in str(exc)
            assert not executor._members  # torn down, not wedged
        else:
            pytest.skip(
                f"synthetic skew moved {moved} shard(s) without "
                f"touching the faulted frame"
            )
    finally:
        executor.close()
        cluster.close()
        engine.close()


# ----------------------------------------------------------------------
# MUTATE-pinned faults: degrade on broadcast, rejoin via catch-up
# ----------------------------------------------------------------------


def _rebuild_count(engine, query, backend):
    """Count on a fresh engine over the mutated graph's dense snapshot."""
    oracle = HGMatch(engine.data.to_hypergraph(), index_backend=backend)
    try:
        return oracle.count(query)
    finally:
        oracle.close()


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_kill_pinned_to_mutate_degrades_then_catchup_rejoins(
    chaos_instance, backend
):
    """Kill a worker process exactly on the MUTATE broadcast frame: the
    commit degrades that replica (its range keeps a live member), the
    next query's counts are bit-identical to a rebuild on the mutated
    graph, and the respawned worker rejoins via catch-up (§2.10) rather
    than being refused for its stale version."""
    from repro.testing import random_mutation_schedule

    data, query, expected = chaos_instance
    engine = HGMatch(data, index_backend=backend)
    plan = FaultPlan(seed=13)
    # On a fresh pool the handshake sends no coordinator frames, so the
    # MUTATE is frame 1 on every connection.
    plan.kill_worker(0, 0, after_frames=1)
    cluster = spawn_local_cluster(
        data, 2, index_backend=backend, num_replicas=2
    )
    plan.arm_killer(0, 0, lambda: cluster.kill_member(0, 0))
    executor = NetShardExecutor(
        addresses=list(cluster.addresses),
        num_replicas=2,
        index_backend=backend,
        io_timeout=60.0,
        chaos=plan,
    )
    try:
        executor._ensure_pool(engine)
        rng = random.Random(17)
        result = None
        for batch in random_mutation_schedule(rng, data, steps=2):
            result = engine.apply_mutations(batch)
            executor.mutate(engine, batch, result)
        assert all(f.consumed for f in plan.faults)
        oracle = _rebuild_count(engine, query, backend)
        # Degraded to one live replica on shard 0, counts still exact.
        assert executor.run(engine, query).embeddings == oracle
        # The respawned slot rebuilds from spawn-time data (version 0);
        # only the CATCHUP route lets it rejoin the mutated pool.
        address = cluster.respawn(0, 0)
        descriptor = executor.admit(address)
        assert (descriptor.shard_id, descriptor.replica_id) == (0, 0)
        assert descriptor.graph_version == result.version
        assert executor.run(engine, query).embeddings == oracle
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_sever_pinned_to_mutate_degrades_then_catchup_rejoins(
    chaos_instance
):
    """Sever the coordinator connection on the MUTATE frame (worker
    survives but misses the batch): the commit degrades that member,
    and readmitting the *same* worker — still at its spawn-time version
    — goes through catch-up and lands on the committed version."""
    from repro.testing import random_mutation_schedule

    data, query, expected = chaos_instance
    backend = "merge"
    engine = HGMatch(data, index_backend=backend)
    plan = FaultPlan(seed=29)
    plan.sever(1, 0, after_frames=1)
    cluster = spawn_local_cluster(
        data, 2, index_backend=backend, num_replicas=2
    )
    executor = NetShardExecutor(
        addresses=list(cluster.addresses),
        num_replicas=2,
        index_backend=backend,
        io_timeout=60.0,
        chaos=plan,
    )
    try:
        executor._ensure_pool(engine)
        rng = random.Random(23)
        batch = random_mutation_schedule(rng, data, steps=1)[0]
        result = engine.apply_mutations(batch)
        executor.mutate(engine, batch, result)
        assert all(f.consumed for f in plan.faults)
        oracle = _rebuild_count(engine, query, backend)
        assert executor.run(engine, query).embeddings == oracle
        # The severed worker process never died and never applied the
        # batch: readmission finds it stale and catch-up repairs it.
        address = cluster.addresses[1 * 2 + 0]
        descriptor = executor.admit(address)
        assert (descriptor.shard_id, descriptor.replica_id) == (1, 0)
        assert descriptor.graph_version == result.version
        assert executor.run(engine, query).embeddings == oracle
    finally:
        executor.close()
        cluster.close()
        engine.close()
