"""Tests for the match-by-vertex backtracking framework (Algorithm 1)."""

from __future__ import annotations

import random

import pytest

from repro import Hypergraph, TimeoutExceeded
from repro.baselines import (
    CECIHMatcher,
    CFLHMatcher,
    DAFHMatcher,
    VertexBacktrackingMatcher,
    brute_force,
    make_baseline,
)
from repro.errors import QueryError
from repro.hypergraph.generators import generate_hypergraph


class TestBruteForce:
    def test_fig1(self, fig1_data, fig1_query):
        result = brute_force(fig1_data, fig1_query)
        assert result.vertex_embeddings == 2
        assert result.hyperedge_tuples == {(0, 2, 4), (1, 3, 5)}

    def test_no_match(self, fig1_data):
        query = Hypergraph(["B", "B"], [{0, 1}])
        result = brute_force(fig1_data, query)
        assert result.vertex_embeddings == 0
        assert result.hyperedge_tuples == set()

    def test_counts_automorphic_vertex_mappings(self):
        data = Hypergraph(["A", "A", "A"], [{0, 1, 2}])
        query = Hypergraph(["A", "A", "A"], [{0, 1, 2}])
        result = brute_force(data, query)
        assert result.vertex_embeddings == 6  # 3! orderings
        assert result.hyperedge_embeddings == 1


class TestGenericMatcher:
    def test_empty_query_raises(self, fig1_data):
        matcher = VertexBacktrackingMatcher(fig1_data)
        with pytest.raises(QueryError):
            matcher.run(Hypergraph(["A"], []))

    def test_empty_candidates_short_circuit(self, fig1_data):
        matcher = VertexBacktrackingMatcher(fig1_data)
        query = Hypergraph(["Z"], [{0}])
        result = matcher.run(query)
        assert result.vertex_embeddings == 0
        assert result.search_nodes == 0

    def test_timeout(self):
        rng = random.Random(0)
        data = generate_hypergraph(120, 900, 1, 3.0, 5, rng)
        matcher = VertexBacktrackingMatcher(data, use_ihs=False)
        label = data.label(0)
        query = Hypergraph(
            [label] * 6, [{0, 1, 2}, {2, 3, 4}, {4, 5, 0}]
        )
        with pytest.raises(TimeoutExceeded):
            matcher.run(query, time_budget=0.0)

    def test_max_results_cap(self, fig1_data, fig1_query):
        matcher = VertexBacktrackingMatcher(fig1_data)
        result = matcher.run(fig1_query, max_results=1)
        assert result.vertex_embeddings == 1

    def test_matcher_is_reusable(self, fig1_data, fig1_query):
        matcher = VertexBacktrackingMatcher(fig1_data)
        assert matcher.count(fig1_query) == matcher.count(fig1_query) == 2


class TestBaselineVariants:
    @pytest.mark.parametrize(
        "matcher_class", [CFLHMatcher, DAFHMatcher, CECIHMatcher]
    )
    def test_fig1_all_variants(self, fig1_data, fig1_query, matcher_class):
        matcher = matcher_class(fig1_data)
        assert matcher.count(fig1_query) == 2
        assert matcher.hyperedge_embeddings(fig1_query) == {
            (0, 2, 4),
            (1, 3, 5),
        }

    def test_backjumping_preserves_counts(self):
        """DAF-H's backjumping must not lose embeddings."""
        rng = random.Random(5)
        for _ in range(10):
            data = generate_hypergraph(14, 12, 2, 2.5, 4, rng)
            query_edges = rng.sample(range(data.num_edges), k=min(3, data.num_edges))
            query = data.induced_by_edges(query_edges)
            plain = VertexBacktrackingMatcher(data, backjump=False)
            jumping = VertexBacktrackingMatcher(data, backjump=True)
            assert plain.count(query) == jumping.count(query)

    def test_refinement_preserves_counts(self):
        rng = random.Random(6)
        for _ in range(10):
            data = generate_hypergraph(14, 12, 2, 2.5, 4, rng)
            query_edges = rng.sample(range(data.num_edges), k=min(2, data.num_edges))
            query = data.induced_by_edges(query_edges)
            plain = VertexBacktrackingMatcher(data, refine=False)
            refined = VertexBacktrackingMatcher(data, refine=True)
            assert plain.count(query) == refined.count(query)

    def test_registry(self, fig1_data):
        for name in ("CFL-H", "DAF-H", "CECI-H", "RapidMatch-H"):
            matcher = make_baseline(name, fig1_data)
            assert matcher.name == name

    def test_registry_unknown_name(self, fig1_data):
        with pytest.raises(ValueError):
            make_baseline("Ullmann", fig1_data)
