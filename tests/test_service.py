"""The always-on match service: multiplexing, admission, isolation.

The acceptance bar (ROADMAP "always-on match service"): N concurrent
queries multiplexed over one shared pool must return counts
**bit-identical** to solo runs on every index backend — including
under chaos faults pinned to one query's frames, which must fail over
or fail *that query* fast while its neighbours stay exact; a blown
deadline or a cancellation (explicit, or a daemon client
disconnecting) must leave no orphaned worker session state; admission
past the depth limit must be an explicit, immediate BUSY — never a
hang; and cache hits must bypass the pool entirely.
"""

from __future__ import annotations

import asyncio
import io
import json
import random
import socket
import threading
import time

import pytest

from repro import HGMatch
from repro.errors import (
    QueryCancelled,
    ReproError,
    SchedulerError,
    ServiceBusy,
    TimeoutExceeded,
)
from repro.hypergraph import INDEX_BACKENDS
from repro.hypergraph.io import dump_native, parse_native
from repro.hypergraph.sampling import QuerySetting, sample_query
from repro.parallel.chaos import FaultPlan
from repro.parallel.level_sync import run_level_synchronous
from repro.service import (
    MatchClient,
    MatchDaemon,
    MatchService,
    MuxShardPool,
    QueryChannel,
    graph_fingerprint,
    query_fingerprint,
)
from repro.testing import make_random_instance


def _wire_form(graph):
    """Round-trip through the native text format, the daemon client's
    wire encoding (labels come back as strings there)."""
    buffer = io.StringIO()
    dump_native(graph, buffer)
    return parse_native(io.StringIO(buffer.getvalue()))


@pytest.fixture(scope="module")
def service_instance():
    """One deterministic data graph, three distinct queries against
    it, and the solo (sequential) counts every multiplexed run must
    reproduce per backend.  Both sides are normalised to their native
    text form so in-process submissions and daemon-wire submissions
    see byte-identical labels."""
    rng = random.Random(987)
    instance = None
    while instance is None:
        instance = make_random_instance(rng)
    data, base_query = instance
    data, base_query = _wire_form(data), _wire_form(base_query)
    queries = [base_query]
    sample_rng = random.Random(11)
    # The t-family setting mirrors make_random_instance: random-walk
    # sub-hypergraphs of *this* data graph, so every query has at
    # least one embedding and the graph never re-rolls.
    for num_edges in (2, 3, 2, 3, 2, 3):
        if len(queries) >= 3:
            break
        try:
            candidate = sample_query(
                data, QuerySetting("t", num_edges, 2, 12), sample_rng,
                max_attempts=200,
            )
        except ReproError:  # pragma: no cover - tiny-graph sampling miss
            continue
        if all(
            query_fingerprint(candidate) != query_fingerprint(existing)
            for existing in queries
        ):
            queries.append(candidate)
    assert len(queries) == 3, "could not sample three distinct queries"
    expected = {}
    for backend in INDEX_BACKENDS:
        engine = HGMatch(data, index_backend=backend)
        try:
            expected[backend] = [engine.count(query) for query in queries]
        finally:
            engine.close()
    return data, queries, expected


def _await_registration(service, query_id, ticket=None, timeout=10.0):
    """Block until ``query_id`` is registered with the pool — pins
    pool query-id assignment for query-targeted chaos faults (ids are
    handed out when the worker thread opens its channel, so two
    back-to-back submissions could otherwise race for id 1).  A fast
    query can register *and* finish between two polls, so a finished
    ``ticket`` also counts: it was the only submission, so the id was
    necessarily its."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if query_id in service.pool._queries:
            return
        if ticket is not None and ticket.done():
            return
        time.sleep(0.01)
    raise AssertionError(f"query {query_id} never registered")


# ----------------------------------------------------------------------
# Multiplexed parity: concurrent queries == solo runs, every backend
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_multiplexed_queries_match_solo_counts(service_instance, backend):
    """The headline gate: three distinct queries, each submitted twice,
    all in flight together over one 2-shard pool — every count equals
    its solo run, on every index backend."""
    data, queries, expected = service_instance
    engine = HGMatch(data, index_backend=backend)
    service = MatchService(
        engine, shards=2, max_concurrent=6, queue_depth=12,
        cache_capacity=0,  # no cache: every run exercises the pool
    )
    try:
        tickets = [
            service.submit(query)
            for query in queries + list(queries)
        ]
        for index, ticket in enumerate(tickets):
            result = ticket.result(timeout=60)
            assert (
                result.embeddings == expected[backend][index % len(queries)]
            )
    finally:
        service.close()
        engine.close()


def test_channel_plugs_into_the_executor_surface(service_instance):
    """A bare ``QueryChannel`` satisfies the level-synchronous executor
    contract on its own (no service on top)."""
    data, queries, expected = service_instance
    engine = HGMatch(data, index_backend="bitset")
    pool = MuxShardPool(num_shards=2, index_backend="bitset")
    try:
        result = run_level_synchronous(
            QueryChannel(pool), engine, queries[0]
        )
        assert result.embeddings == expected["bitset"][0]
        assert sorted(s.worker_id for s in result.worker_stats) == [0, 1]
    finally:
        pool.close()
        engine.close()


# ----------------------------------------------------------------------
# Admission control: explicit BUSY, never a hang
# ----------------------------------------------------------------------


def test_overload_is_refused_with_explicit_busy(service_instance):
    """The queue_depth+1-th query gets ServiceBusy with a retry-after
    hint *immediately* — while the admitted query is still running."""
    data, queries, _expected = service_instance
    engine = HGMatch(data, index_backend="bitset")
    service = MatchService(
        engine, shards=1, max_concurrent=1, queue_depth=1,
        retry_after=0.125,
    )
    gate = threading.Event()
    real_ensure = service.pool.ensure_open

    def gated_ensure(target):
        assert gate.wait(30.0)
        real_ensure(target)

    service.pool.ensure_open = gated_ensure
    try:
        held = service.submit(queries[0])
        deadline = time.monotonic() + 5.0
        while service.in_flight != 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        started = time.monotonic()
        with pytest.raises(
            ServiceBusy,
            match=r"admission depth limit \(1 queries in flight\); "
                  r"retry after 0\.125s",
        ) as refusal:
            service.submit(queries[1])
        assert time.monotonic() - started < 2.0  # refused, not queued
        assert refusal.value.depth == 1
        assert refusal.value.retry_after == 0.125
        gate.set()
        held.result(timeout=60)
        # The slot is free again: the refused query now goes through.
        assert service.submit(queries[1]).result(timeout=60) is not None
    finally:
        gate.set()
        service.close()
        engine.close()


def test_cancel_before_start_returns_the_slot(service_instance):
    """Cancelling a never-started ticket frees its admission slot even
    though the run body (whose finally normally does it) never ran."""
    data, queries, _expected = service_instance
    engine = HGMatch(data, index_backend="bitset")
    service = MatchService(
        engine, shards=1, max_concurrent=1, queue_depth=2
    )
    gate = threading.Event()
    real_ensure = service.pool.ensure_open

    def gated_ensure(target):
        assert gate.wait(30.0)
        real_ensure(target)

    service.pool.ensure_open = gated_ensure
    try:
        running = service.submit(queries[0])   # occupies the one worker
        queued = service.submit(queries[1])    # backlogged, not started
        assert service.in_flight == 2
        queued.cancel()
        deadline = time.monotonic() + 5.0
        while service.in_flight != 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.in_flight == 1          # slot returned
        with pytest.raises(QueryCancelled, match="before it started"):
            queued.result(timeout=5)
        gate.set()
        running.result(timeout=60)
    finally:
        gate.set()
        service.close()
        engine.close()


# ----------------------------------------------------------------------
# Result cache: hits bypass the pool entirely
# ----------------------------------------------------------------------


def test_cache_hits_bypass_the_pool(service_instance):
    data, queries, expected = service_instance
    engine = HGMatch(data, index_backend="bitset")
    service = MatchService(engine, shards=2)
    try:
        first = service.match(queries[0])
        assert first.embeddings == expected["bitset"][0]
        frames_after_miss = service.pool.dispatched_frames
        assert frames_after_miss > 0
        hit = service.submit(queries[0])
        assert hit.cached and hit.done()
        assert hit.result() is first  # the very result object, no rerun
        # Not one frame crossed the wire for the hit.
        assert service.pool.dispatched_frames == frames_after_miss
        assert service.cache_hits == 1 and service.cache_misses == 1
        # A *different* query is a miss, not a false hit.
        other = service.match(queries[1])
        assert other.embeddings == expected["bitset"][1]
        assert service.pool.dispatched_frames > frames_after_miss
    finally:
        service.close()
        engine.close()


def test_fingerprints_key_on_content_and_order(service_instance):
    data, queries, _expected = service_instance
    assert graph_fingerprint(data) == graph_fingerprint(data)
    assert graph_fingerprint(data) != graph_fingerprint(queries[0])
    assert query_fingerprint(queries[0]) == query_fingerprint(queries[0])
    assert query_fingerprint(queries[0]) != query_fingerprint(queries[1])
    # A pinned matching order is part of the key: same query text,
    # different plan — never served from the other's cache entry.
    order = list(range(queries[0].num_edges))
    assert (
        query_fingerprint(queries[0], order)
        != query_fingerprint(queries[0])
    )


# ----------------------------------------------------------------------
# Deadlines & cancellation: no orphaned worker state, exact afterwards
# ----------------------------------------------------------------------


def test_deadline_exceeded_cancels_remotely(service_instance):
    """A blown deadline raises TimeoutExceeded, releases the query's
    pool state (CANCEL broadcast included), and the very next query —
    same pool, same workers — is exact."""
    data, queries, expected = service_instance
    plan = FaultPlan()
    # The worker's first QREPLY (its frame 2, after HELLO) is delayed
    # past the deadline, so the query times out mid-gather.
    plan.slow_reply(0, 0, after_frames=2, seconds=1.5)
    engine = HGMatch(data, index_backend="bitset")
    service = MatchService(engine, shards=2, chaos=plan, cache_capacity=0)
    try:
        with pytest.raises(TimeoutExceeded, match="time budget"):
            service.match(queries[0], deadline=0.3)
        assert service.pool._queries == {}  # nothing left registered
        assert (
            service.match(queries[0]).embeddings == expected["bitset"][0]
        )
        assert service.pool._queries == {}
    finally:
        service.close()
        engine.close()


def test_client_cancel_mid_flight(service_instance):
    data, queries, expected = service_instance
    plan = FaultPlan()
    plan.slow_reply(0, 0, after_frames=2, seconds=1.5)
    engine = HGMatch(data, index_backend="bitset")
    service = MatchService(engine, shards=2, chaos=plan, cache_capacity=0)
    try:
        ticket = service.submit(queries[0])
        _await_registration(service, 1)  # it is in the slow gather now
        ticket.cancel()
        with pytest.raises(QueryCancelled):
            ticket.result(timeout=10)
        deadline = time.monotonic() + 10.0
        while service.pool._queries and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.pool._queries == {}
        assert (
            service.match(queries[0]).embeddings == expected["bitset"][0]
        )
    finally:
        service.close()
        engine.close()


# ----------------------------------------------------------------------
# Chaos isolation: a fault pinned to one query hurts only that query
# ----------------------------------------------------------------------


def test_query_pinned_drop_fails_fast_for_that_query_alone(
    service_instance,
):
    """A dropped reply pinned to query id 1's frames: that query alone
    fails fast at its I/O deadline; the concurrent query — same
    connections, same barrier traffic — returns its exact count."""
    data, queries, expected = service_instance
    plan = FaultPlan()
    # Worker 0 swallows its first reply *for query 1 only*.
    plan.drop_reply(0, 0, after_frames=1, query_id=1)
    engine = HGMatch(data, index_backend="bitset")
    service = MatchService(
        engine, shards=2, chaos=plan, cache_capacity=0, io_timeout=0.75,
    )
    try:
        victim = service.submit(queries[0])
        _await_registration(service, 1, victim)  # victim owns query id 1
        healthy = service.submit(queries[1])
        assert (
            healthy.result(timeout=60).embeddings == expected["bitset"][1]
        )
        with pytest.raises(
            SchedulerError, match=r"did not answer query 1"
        ):
            victim.result(timeout=60)
        # Fail-fast, not collateral: the pool (and its connections)
        # kept serving — a fresh run of the victim's query is exact.
        assert (
            service.match(queries[0]).embeddings == expected["bitset"][0]
        )
    finally:
        service.close()
        engine.close()


@pytest.mark.parametrize("fault", ["sever", "garble"])
def test_query_pinned_connection_fault_fails_over(service_instance, fault):
    """A severed/garbled frame pinned to one query's traffic kills the
    shared connection — recovery reconnects and replays every open
    query, so *all* of them (victim included) finish exact."""
    data, queries, expected = service_instance
    plan = FaultPlan()
    # Query 1's second coordinator frame (its first QLEVEL) is the
    # trigger; query 2 shares the connection and must not care.
    getattr(plan, fault)(0, 0, after_frames=2, query_id=1)
    engine = HGMatch(data, index_backend="bitset")
    service = MatchService(engine, shards=2, chaos=plan, cache_capacity=0)
    try:
        victim = service.submit(queries[0])
        _await_registration(service, 1, victim)
        healthy = service.submit(queries[1])
        assert (
            victim.result(timeout=60).embeddings == expected["bitset"][0]
        )
        assert (
            healthy.result(timeout=60).embeddings == expected["bitset"][1]
        )
    finally:
        service.close()
        engine.close()


# ----------------------------------------------------------------------
# Engine integration & lifecycle
# ----------------------------------------------------------------------


def test_engine_owns_a_persistent_match_service(service_instance):
    data, queries, expected = service_instance
    engine = HGMatch(data, index_backend="adaptive")
    try:
        service = engine.match_service(shards=2)
        assert engine.match_service(shards=2) is service  # warm reuse
        assert (
            service.match(queries[0]).embeddings == expected["adaptive"][0]
        )
        rebuilt = engine.match_service(shards=1)  # new layout: rebuilt
        assert rebuilt is not service
        assert (
            rebuilt.match(queries[0]).embeddings == expected["adaptive"][0]
        )
    finally:
        engine.close()
        engine.close()  # idempotent, service included
    with pytest.raises(SchedulerError, match="closed"):
        rebuilt.submit(queries[0])


def test_drain_refuses_new_work_and_shuts_down(service_instance):
    data, queries, expected = service_instance
    engine = HGMatch(data, index_backend="bitset")
    service = MatchService(engine, shards=1)
    try:
        assert (
            service.match(queries[0]).embeddings == expected["bitset"][0]
        )
        service.drain(timeout=10.0)
        service.drain(timeout=10.0)  # idempotent
        with pytest.raises(SchedulerError, match="closed"):
            service.submit(queries[1])
    finally:
        service.close()
        engine.close()


# ----------------------------------------------------------------------
# The daemon front end: line JSON, disconnect-cancel, graceful stop
# ----------------------------------------------------------------------


def _start_daemon(service):
    """Serve ``service`` from a MatchDaemon on a background event-loop
    thread; returns ``(daemon, (host, port), thread)`` once listening.
    ``daemon.request_stop()`` (the SIGTERM handler's exact body) is the
    way back out — it is thread-safe by contract."""
    daemon = MatchDaemon(service, port=0)
    ready = threading.Event()

    def runner():
        async def _main():
            await daemon.start()
            ready.set()
            await daemon.serve()

        asyncio.run(_main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(30.0), "daemon never came up"
    return daemon, daemon.address, thread


def _stop_daemon(daemon, thread):
    daemon.request_stop()
    thread.join(timeout=60.0)
    assert not thread.is_alive()


def test_daemon_round_trip_cache_and_graceful_stop(service_instance):
    data, queries, expected = service_instance
    engine = HGMatch(data, index_backend="bitset")
    service = MatchService(engine, shards=2)
    daemon, (host, port), thread = _start_daemon(service)
    try:
        client = MatchClient(host, port, timeout=30.0)
        outcome = client.query(queries[0])
        assert outcome.embeddings == expected["bitset"][0]
        assert not outcome.cached
        repeat = client.query(queries[0])
        assert repeat.embeddings == expected["bitset"][0]
        assert repeat.cached
        with pytest.raises(TimeoutExceeded):
            # An already-blown deadline comes back *typed*, not as a
            # generic error string.
            client.query(queries[1], deadline=1e-9)
    finally:
        _stop_daemon(daemon, thread)
        engine.close()
    assert daemon.queries_served == 2  # the typed failure is not "served"
    # request_stop drained the service: the listener is gone and the
    # service refuses new work.
    with pytest.raises(SchedulerError, match="closed"):
        service.submit(queries[0])
    with pytest.raises(ReproError, match="unreachable"):
        MatchClient(host, port, timeout=2.0).query(queries[0])


def test_daemon_refuses_garbage_without_dying(service_instance):
    data, queries, expected = service_instance
    engine = HGMatch(data, index_backend="bitset")
    service = MatchService(engine, shards=1)
    daemon, (host, port), thread = _start_daemon(service)
    try:
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(b"this is not json\n")
            raw = sock.makefile("r").readline()
        payload = json.loads(raw)
        assert payload["ok"] is False
        assert "bad request" in payload["error"]
        # The daemon survived: real work still goes through.
        outcome = MatchClient(host, port, timeout=30.0).query(queries[0])
        assert outcome.embeddings == expected["bitset"][0]
    finally:
        _stop_daemon(daemon, thread)
        engine.close()


def test_daemon_client_disconnect_cancels_the_query(service_instance):
    data, queries, expected = service_instance
    plan = FaultPlan()
    plan.slow_reply(0, 0, after_frames=2, seconds=1.5)
    engine = HGMatch(data, index_backend="bitset")
    service = MatchService(engine, shards=2, chaos=plan, cache_capacity=0)
    daemon, (host, port), thread = _start_daemon(service)
    try:
        # Submit over a raw socket and hang up without reading: the
        # EOF watchdog must cancel the in-flight query.
        buffer = io.StringIO()
        dump_native(queries[0], buffer)
        request = json.dumps({"query": buffer.getvalue()}) + "\n"
        with socket.create_connection((host, port), timeout=10.0) as sock:
            sock.sendall(request.encode("utf-8"))
        # Abandoned mid-gather (the slow reply is still ~1s away): the
        # pool must come back empty — cancelled, not orphaned.
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            if service.in_flight == 0 and not service.pool._queries:
                break
            time.sleep(0.05)
        assert service.in_flight == 0
        assert service.pool._queries == {}
        # The pool survived the abandonment: a client who *does* listen
        # gets the exact count.
        outcome = MatchClient(host, port, timeout=30.0).query(queries[0])
        assert outcome.embeddings == expected["bitset"][0]
    finally:
        _stop_daemon(daemon, thread)
        engine.close()
