"""Unit tests for the synthetic hypergraph generators."""

from __future__ import annotations

import random

import pytest

from repro.errors import HypergraphError
from repro.hypergraph.generators import (
    generate_hypergraph,
    generate_planted_hypergraph,
    generate_uniform_hypergraph,
    perturb_labels,
    random_connected_hypergraph,
    sample_arity,
    sample_labels,
    zipf_weights,
)
from repro import Hypergraph


class TestZipfAndLabels:
    def test_zipf_weights_decreasing(self):
        weights = zipf_weights(5, 1.0)
        assert weights == sorted(weights, reverse=True)

    def test_sample_labels_full_alphabet(self):
        rng = random.Random(1)
        labels = sample_labels(100, 7, rng)
        assert set(labels) == set(range(7))

    def test_sample_labels_requires_positive_alphabet(self):
        with pytest.raises(HypergraphError):
            sample_labels(5, 0, random.Random(0))

    def test_labels_skew_towards_frequent(self):
        rng = random.Random(2)
        labels = sample_labels(2000, 5, rng, exponent=1.5)
        counts = [labels.count(i) for i in range(5)]
        assert counts[0] > counts[4]


class TestArity:
    def test_arity_within_bounds(self):
        rng = random.Random(3)
        for _ in range(300):
            arity = sample_arity(4.0, 9, rng, min_arity=2)
            assert 2 <= arity <= 9

    def test_mean_arity_is_roughly_respected(self):
        rng = random.Random(4)
        samples = [sample_arity(5.0, 40, rng) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert 3.5 <= mean <= 6.5

    def test_invalid_bounds_rejected(self):
        with pytest.raises(HypergraphError):
            sample_arity(3.0, 1, random.Random(0), min_arity=2)


class TestGenerateHypergraph:
    def test_shape(self):
        rng = random.Random(5)
        graph = generate_hypergraph(200, 150, 6, 3.0, 8, rng)
        assert graph.num_vertices == 200
        assert 0 < graph.num_edges <= 150
        assert graph.max_arity() <= 8
        assert len(graph.label_alphabet()) == 6

    def test_deterministic_in_seed(self):
        first = generate_hypergraph(60, 40, 3, 2.5, 5, random.Random(9))
        second = generate_hypergraph(60, 40, 3, 2.5, 5, random.Random(9))
        assert first == second

    def test_different_seeds_differ(self):
        first = generate_hypergraph(60, 40, 3, 2.5, 5, random.Random(9))
        second = generate_hypergraph(60, 40, 3, 2.5, 5, random.Random(10))
        assert first != second

    def test_invalid_sizes_rejected(self):
        with pytest.raises(HypergraphError):
            generate_hypergraph(0, 5, 2, 2.0, 3, random.Random(0))


class TestOtherGenerators:
    def test_uniform_arity(self):
        graph = generate_uniform_hypergraph(30, 20, 3, 2, random.Random(6))
        assert all(len(edge) == 3 for edge in graph.edges)

    def test_uniform_arity_too_large(self):
        with pytest.raises(HypergraphError):
            generate_uniform_hypergraph(2, 5, 3, 2, random.Random(0))

    def test_connected_generator_is_connected(self):
        for seed in range(5):
            graph = random_connected_hypergraph(12, 8, 3, 4, random.Random(seed))
            assert graph.is_connected()

    def test_planted_copies_guarantee_embeddings(self):
        from repro import HGMatch

        rng = random.Random(7)
        base = generate_hypergraph(20, 10, 2, 2.5, 4, rng)
        pattern = Hypergraph(["A", "B", "A"], [{0, 1}, {1, 2}])
        planted = generate_planted_hypergraph(base, pattern, copies=3, rng=rng)
        assert HGMatch(planted).count(pattern) >= 3

    def test_perturb_labels_changes_graph(self):
        rng = random.Random(8)
        graph = generate_hypergraph(30, 20, 4, 2.5, 4, rng)
        perturbed = perturb_labels(graph, flips=10, num_labels=4, rng=rng)
        assert perturbed.num_vertices == graph.num_vertices
        assert perturbed.num_edges == graph.num_edges
