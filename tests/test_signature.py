"""Unit tests for hyperedge signatures (Definition IV.1)."""

from __future__ import annotations

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.hypergraph.signature import (
    is_sub_signature,
    merge_signatures,
    signature_arity,
    signature_label_counts,
    signature_of_labels,
)


class TestSignatureBasics:
    def test_canonical_ordering(self):
        assert signature_of_labels(["B", "A", "A"]) == ("A", "A", "B")

    def test_multiset_semantics(self):
        assert signature_of_labels(["A", "A"]) != signature_of_labels(["A"])

    def test_arity(self):
        assert signature_arity(("A", "A", "B")) == 3
        assert signature_arity(()) == 0

    def test_label_counts(self):
        assert signature_label_counts(("A", "A", "B")) == Counter(
            {"A": 2, "B": 1}
        )

    def test_fig1_signatures(self, fig1_data):
        assert fig1_data.edge_signature(0) == ("A", "B")
        assert fig1_data.edge_signature(2) == ("A", "A", "C")
        assert fig1_data.edge_signature(4) == ("A", "A", "B", "C")
        # Both 4-ary edges share one signature (one partition in Table I).
        assert fig1_data.edge_signature(4) == fig1_data.edge_signature(5)


class TestSubSignature:
    def test_contained(self):
        assert is_sub_signature(("A", "B"), ("A", "A", "B"))

    def test_multiplicity_respected(self):
        assert not is_sub_signature(("B", "B"), ("A", "A", "B"))

    def test_empty_is_contained(self):
        assert is_sub_signature((), ("A",))

    def test_equal_signatures(self):
        assert is_sub_signature(("A", "B"), ("A", "B"))


class TestMerge:
    def test_disjoint_union(self):
        assert merge_signatures(("A",), ("A", "B")) == ("A", "A", "B")


@given(st.lists(st.sampled_from("ABCD"), max_size=8))
def test_signature_is_permutation_invariant(labels):
    import random

    shuffled = list(labels)
    random.Random(0).shuffle(shuffled)
    assert signature_of_labels(labels) == signature_of_labels(shuffled)


@given(
    st.lists(st.sampled_from("ABC"), max_size=6),
    st.lists(st.sampled_from("ABC"), max_size=6),
)
def test_sub_signature_iff_counter_containment(small, big):
    expected = not (Counter(small) - Counter(big))
    assert (
        is_sub_signature(signature_of_labels(small), signature_of_labels(big))
        == expected
    )
