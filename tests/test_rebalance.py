"""Adaptive shard placement: balanced mode and the load rebalancer.

The acceptance bar for any placement change is the same as for the
transports: bit-identical counts.  This suite pins it across the
executor matrix — threads, processes, sockets and the simulated
scheduler (which don't shard and so anchor the reference), for every
index backend, under balanced placement and again after a live
rebalance — plus the rebalance lifecycle itself: only moved shards
rebuild, stale placements are refused at the socket handshake, and
per-shard CPU load is recorded for the feedback loop.
"""

from __future__ import annotations

import random

import pytest

from repro import HGMatch
from repro.core.counters import MatchCounters
from repro.errors import SchedulerError
from repro.hypergraph import INDEX_BACKENDS
from repro.parallel import (
    NetShardExecutor,
    ProcessShardExecutor,
    load_imbalance,
    spawn_local_cluster,
    worker_loads,
)
from repro.testing import make_random_instance


@pytest.fixture(scope="module")
def workload_instances():
    """A deterministic batch of small (data, query) pairs."""
    rng = random.Random(4242)
    instances = []
    while len(instances) < 3:
        instance = make_random_instance(rng)
        if instance is not None:
            instances.append(instance)
    return instances


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_process_parity_balanced_and_after_rebalance(
    workload_instances, backend
):
    """processes × {balanced, rebalanced} == sequential == threads ==
    simulated, for every backend, with the funnel counters exact."""
    for data, query in workload_instances[:2]:
        engine = HGMatch(data, index_backend=backend, sharding="balanced")
        executor = ProcessShardExecutor(
            3, index_backend=backend, sharding="balanced"
        )
        try:
            sequential = MatchCounters()
            expected = engine.count(query, counters=sequential)
            assert engine.count(query, executor="threads", workers=3) == (
                expected
            )
            assert engine.count(
                query, executor="simulated", workers=3
            ) == expected
            first = executor.run(engine, query)
            assert first.embeddings == expected
            assert first.counters.candidates == sequential.candidates
            assert first.counters.filtered == sequential.filtered
            executor.rebalance(first.worker_stats)
            second = executor.run(engine, query)
            assert second.embeddings == expected
            assert second.counters.candidates == sequential.candidates
            assert second.counters.filtered == sequential.filtered
        finally:
            executor.close()
            engine.close()


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_socket_parity_balanced_and_after_rebalance(
    workload_instances, backend
):
    """sockets × {balanced, rebalanced} == sequential, every backend."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend=backend)
    executor = NetShardExecutor(
        num_shards=2, index_backend=backend, sharding="balanced"
    )
    try:
        expected = engine.count(query)
        first = executor.run(engine, query)
        assert first.embeddings == expected
        executor.rebalance(first.worker_stats)
        second = executor.run(engine, query)
        assert second.embeddings == expected
        # The rebalanced layout persists across jobs on the same pool.
        assert executor.run(engine, query).embeddings == expected
    finally:
        executor.close()
        engine.close()


def test_engine_plumbs_sharding_to_both_executors(workload_instances):
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="bitset", shards=2,
                     sharding="balanced")
    try:
        expected = engine.count(query)
        assert engine.count(query, executor="processes") == expected
        assert engine.shard_executor().sharding == "balanced"
        assert engine.count(query, executor="sockets") == expected
        assert engine.net_executor().sharding == "balanced"
    finally:
        engine.close()


def test_rebalance_rebuilds_only_moved_shards(workload_instances):
    """A no-op load vector moves nothing; a skewed one moves at most
    num_shards shards and the pool keeps serving."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="bitset")
    executor = ProcessShardExecutor(3, index_backend="bitset")
    try:
        expected = engine.count(query)
        result = executor.run(engine, query)
        assert result.embeddings == expected
        stats = sorted(result.worker_stats, key=lambda s: s.worker_id)
        # Synthetic loads: shard 0 four times hotter than the others.
        stats[0].cpu_time, stats[1].cpu_time, stats[2].cpu_time = (
            4.0, 1.0, 1.0,
        )
        moved = executor.rebalance(stats)
        assert 0 < moved <= 3
        assert executor.run(engine, query).embeddings == expected
        # Balanced loads: the recut swings back toward the even cut
        # (possibly a no-op) and counts still hold.
        stats[0].cpu_time = 1.0
        again = executor.rebalance(stats)
        assert 0 <= again <= 3
        assert executor.run(engine, query).embeddings == expected
        # Identical loads twice in a row converge to a fixed point.
        assert executor.rebalance(stats) == 0
    finally:
        executor.close()
        engine.close()


def test_rebalance_relabels_unmoved_workers_too(workload_instances):
    """Every worker must end a rebalance on the new placement label —
    including ones whose ranges didn't move — or the next session
    re-establishment (idle-out, --max-sessions) would be refused at
    the handshake and strand the whole fleet on externally managed
    workers."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="merge")
    cluster = spawn_local_cluster(data, 3, index_backend="merge")
    executor = NetShardExecutor(
        addresses=cluster.addresses, index_backend="merge"
    )
    try:
        expected = engine.count(query)
        first = executor.run(engine, query)
        assert first.embeddings == expected
        stats = sorted(first.worker_stats, key=lambda s: s.worker_id)
        for entry, load in zip(stats, (4.0, 1.0, 1.0)):
            entry.cpu_time = load
        if executor.rebalance(stats) == 0:
            pytest.skip("synthetic loads moved no boundary on this data")
        label = executor._sharding_label
        assert label.startswith("rebalanced-")
        # Simulate sessions dropping between jobs (worker idle-out):
        # reconnection re-validates every worker's handshake against
        # the rebalanced label, so all of them must announce it.
        executor._close_connections()
        assert executor.run(engine, query).embeddings == expected
        assert executor._sharding_label == label
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_rebalance_requires_live_pool():
    executor = ProcessShardExecutor(2, index_backend="merge")
    with pytest.raises(SchedulerError, match="no live pool"):
        executor.rebalance([])
    net = NetShardExecutor(num_shards=2, index_backend="merge")
    with pytest.raises(SchedulerError, match="no live pool"):
        net.rebalance([])


def test_handshake_refuses_placement_mismatch(workload_instances):
    """A worker cut under a different placement owns different rows —
    composing it with uniform peers would double- or under-count."""
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="merge")
    cluster = spawn_local_cluster(
        data, 2, index_backend="merge", sharding="balanced"
    )
    executor = NetShardExecutor(
        addresses=cluster.addresses, index_backend="merge"
    )
    try:
        with pytest.raises(SchedulerError, match="placement mismatch"):
            executor.run(engine, query)
    finally:
        executor.close()
        cluster.close()
        engine.close()


def test_worker_stats_record_cpu_time(workload_instances):
    data, query = workload_instances[0]
    engine = HGMatch(data, index_backend="bitset")
    executor = ProcessShardExecutor(2, index_backend="bitset")
    try:
        result = executor.run(engine, query)
        assert any(s.cpu_time > 0 for s in result.worker_stats)
        loads = worker_loads(result.worker_stats)
        assert loads == [
            s.cpu_time
            for s in sorted(result.worker_stats, key=lambda s: s.worker_id)
        ]
        assert load_imbalance(result.worker_stats) >= 1.0
    finally:
        executor.close()
        engine.close()


def test_load_helpers_fall_back_to_busy_time():
    from repro.parallel import WorkerStats

    stats = [
        WorkerStats(worker_id=1, busy_time=1.0),
        WorkerStats(worker_id=0, busy_time=3.0),
    ]
    assert worker_loads(stats) == [3.0, 1.0]
    assert load_imbalance(stats) == 1.5
    assert load_imbalance([WorkerStats(worker_id=0)]) == 1.0
