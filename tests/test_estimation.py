"""Tests for plan cardinality estimation."""

from __future__ import annotations

import random

import pytest

from repro import HGMatch, Hypergraph
from repro.core.estimation import (
    average_posting_length,
    compare_orders,
    estimate_driven_order,
    estimate_order,
    explain,
)
from repro.core.ordering import is_connected_order
from repro.errors import QueryError
from repro.hypergraph import PartitionedStore


class TestStepEstimates:
    def test_scan_step_uses_partition_rows(self, fig1_data, fig1_query):
        store = PartitionedStore(fig1_data)
        estimate = estimate_order(fig1_query, store, (0, 1, 2))
        assert estimate.steps[0].partition_rows == 2
        assert estimate.steps[0].expansion_factor == 2.0
        assert estimate.steps[0].anchors == 0

    def test_anchor_counts(self, fig1_data, fig1_query):
        store = PartitionedStore(fig1_data)
        estimate = estimate_order(fig1_query, store, (0, 1, 2))
        assert estimate.steps[1].anchors == 1   # shares u2
        assert estimate.steps[2].anchors == 3   # shares u0, u1, u4

    def test_missing_partition_estimates_zero(self, fig1_data):
        store = PartitionedStore(fig1_data)
        query = Hypergraph(["B", "B", "A"], [{0, 2}, {0, 1}])
        estimate = estimate_order(query, store, (0, 1))
        assert estimate.estimated_embeddings == 0.0

    def test_empty_order_rejected(self, fig1_data, fig1_query):
        store = PartitionedStore(fig1_data)
        with pytest.raises(QueryError):
            estimate_order(fig1_query, store, ())

    def test_estimated_embeddings_in_right_ballpark(self, fig1_data, fig1_query):
        """The Fig. 1 instance has 2 embeddings; the estimate must be a
        small positive number, not zero and not astronomically large."""
        store = PartitionedStore(fig1_data)
        estimate = estimate_order(fig1_query, store, (0, 1, 2))
        assert 0 < estimate.estimated_embeddings < 100

    def test_describe(self, fig1_data, fig1_query):
        store = PartitionedStore(fig1_data)
        text = estimate_order(fig1_query, store, (0, 1, 2)).describe()
        assert "total:" in text


class TestAveragePostingLength:
    def test_value(self, fig1_data):
        store = PartitionedStore(fig1_data)
        partition = store.partition(("A", "B"))
        # 4 posting entries over 3 distinct vertices.
        assert average_posting_length(partition) == pytest.approx(4 / 3)

    def test_missing_partition(self):
        assert average_posting_length(None) == 0.0


class TestEstimateDrivenOrder:
    def test_produces_connected_permutation(self, fig1_data, fig1_query):
        store = PartitionedStore(fig1_data)
        order = estimate_driven_order(fig1_query, store)
        assert is_connected_order(fig1_query, order)

    def test_random_instances(self):
        from repro.hypergraph.generators import generate_hypergraph
        from repro.hypergraph.sampling import QuerySetting, sample_query

        rng = random.Random(3)
        for _ in range(6):
            data = generate_hypergraph(30, 40, 3, 2.5, 5, rng)
            try:
                query = sample_query(
                    data, QuerySetting("t", 3, 3, 15), rng, max_attempts=50
                )
            except QueryError:
                continue
            store = PartitionedStore(data)
            order = estimate_driven_order(query, store)
            assert is_connected_order(query, order)
            # The engine accepts the order and produces correct results.
            engine = HGMatch(data, store=store)
            assert engine.count(query, order=order) == engine.count(query)

    def test_empty_query_rejected(self, fig1_data):
        store = PartitionedStore(fig1_data)
        with pytest.raises(QueryError):
            estimate_driven_order(Hypergraph(["A"], []), store)

    def test_disconnected_query_rejected(self, fig1_data):
        store = PartitionedStore(fig1_data)
        query = Hypergraph(["A", "B", "A", "B"], [{0, 1}, {2, 3}])
        with pytest.raises(QueryError):
            estimate_driven_order(query, store)


class TestExplainAndCompare:
    def test_explain_combines_plan_and_estimate(self, fig1_engine, fig1_query):
        text = explain(fig1_engine, fig1_query)
        assert "SCAN" in text
        assert "PlanEstimate" in text

    def test_compare_orders_sorted_by_cost(self, fig1_engine, fig1_query):
        rows = compare_orders(
            fig1_engine,
            fig1_query,
            {"paper": (0, 1, 2), "reversed": (2, 1, 0)},
        )
        assert len(rows) == 2
        assert rows[0]["est_cost"] <= rows[1]["est_cost"]
