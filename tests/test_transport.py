"""Byte-level tests of the socket transport's framed protocol.

Everything here exercises pure encode/decode paths (plus a socketpair
for the stream helpers) — no worker processes.  The failure modes the
suite pins are exactly the ones a network can produce and a pipe
cannot: truncated frames, version skew, corrupt length prefixes and
payload tables that overrun their body.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro.core.candidates import (
    WIRE_VERSION,
    decode_versioned,
    encode_tuple_payload,
    encode_versioned,
)
from repro.errors import SchedulerError, TransportError
from repro.parallel import transport


class TestFrameCodec:
    def test_round_trip_every_kind(self):
        for kind in (
            transport.MSG_HELLO, transport.MSG_JOB, transport.MSG_LEVEL,
            transport.MSG_LEVEL_REPLY, transport.MSG_COLLECT,
            transport.MSG_ACCOUNTING, transport.MSG_STOP,
            transport.MSG_SHUTDOWN, transport.MSG_ERROR,
        ):
            body = bytes([kind]) * 7
            assert transport.decode_frame(
                transport.encode_frame(kind, body)
            ) == (kind, body)

    def test_layout_is_the_documented_one(self):
        # u32 length | u8 version | u8 kind | body — little-endian.
        frame = transport.encode_frame(transport.MSG_STOP, b"xy")
        assert frame == struct.pack(
            "<IBB", 4, transport.PROTOCOL_VERSION, transport.MSG_STOP
        ) + b"xy"

    def test_truncated_header(self):
        with pytest.raises(TransportError, match="truncated"):
            transport.decode_frame(b"\x02\x00")

    def test_length_buffer_mismatch(self):
        frame = transport.encode_frame(transport.MSG_STOP, b"abc")
        with pytest.raises(TransportError, match="does not match"):
            transport.decode_frame(frame[:-1])
        with pytest.raises(TransportError, match="does not match"):
            transport.decode_frame(frame + b"z")

    def test_bad_version_byte(self):
        frame = bytearray(transport.encode_frame(transport.MSG_STOP))
        frame[4] = transport.PROTOCOL_VERSION + 1
        with pytest.raises(TransportError, match="unsupported protocol"):
            transport.decode_frame(bytes(frame))

    def test_unknown_kind(self):
        frame = bytearray(transport.encode_frame(transport.MSG_STOP))
        frame[5] = 0x7A
        with pytest.raises(TransportError, match="unknown frame kind"):
            transport.decode_frame(bytes(frame))
        with pytest.raises(TransportError, match="unknown frame kind"):
            transport.encode_frame(0x7A)

    def test_implausible_length(self):
        bogus = struct.pack(
            "<IBB", transport.MAX_FRAME_BYTES + 1,
            transport.PROTOCOL_VERSION, transport.MSG_STOP,
        )
        with pytest.raises(TransportError, match="implausible"):
            transport.decode_frame(bogus)
        # A length too small to even hold version+kind is also corrupt.
        with pytest.raises(TransportError, match="implausible"):
            transport.decode_frame(struct.pack("<IBB", 1, 1, 0x53))

    def test_transport_error_is_a_scheduler_error(self):
        # Existing except-SchedulerError handlers must keep catching.
        assert issubclass(TransportError, SchedulerError)


class TestLevelReply:
    def test_round_trip_with_gaps(self):
        payloads = [b"\x01T-bytes", None, b"\x01M", None]
        body = transport.encode_level_reply(payloads, 0)
        assert transport.decode_level_reply(body) == (payloads, 0, None)

    def test_final_level_reply(self):
        body = transport.encode_level_reply(None, 42, b"pickled-tail")
        assert transport.decode_level_reply(body) == (
            None, 42, b"pickled-tail"
        )

    def test_truncated_reply_body(self):
        with pytest.raises(TransportError, match="truncated level reply"):
            transport.decode_level_reply(b"\x00\x01")

    def test_truncated_payload_table(self):
        body = transport.encode_level_reply([b"\x01abc"], 0)
        with pytest.raises(TransportError):
            transport.decode_level_reply(body[:-2])

    def test_payload_overruns_body(self):
        body = bytearray(transport.encode_level_reply([b"\x01abc"], 0))
        # Inflate the payload size field past the end of the body.
        struct.pack_into("<I", body, 13, 1000)
        with pytest.raises(TransportError, match="overruns"):
            transport.decode_level_reply(bytes(body))

    def test_missing_promised_accounting(self):
        body = transport.encode_level_reply(None, 1, b"tail")
        with pytest.raises(TransportError, match="accounting"):
            transport.decode_level_reply(body[: 13])


class TestVersionedCandidatePayloads:
    def test_round_trip(self):
        payload = encode_tuple_payload((3, 9))
        wired = encode_versioned(payload)
        assert wired[0] == WIRE_VERSION
        assert decode_versioned(wired) == payload

    def test_bad_version_byte_rejected(self):
        payload = encode_versioned(encode_tuple_payload((1,)))
        skewed = bytes([WIRE_VERSION + 1]) + payload[1:]
        with pytest.raises(ValueError, match="unsupported candidate wire"):
            decode_versioned(skewed)

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            decode_versioned(b"")


class TestHandshake:
    def test_round_trip(self):
        descriptor = {
            "shard_id": 1, "num_shards": 4, "index_backend": "bitset",
            "num_partitions": 3, "num_rows": 17,
            "graph_edges": 40, "graph_vertices": 19,
        }
        body = transport.encode_handshake(descriptor, seed=7)
        assert transport.decode_handshake(body) == (descriptor, 7)

    def test_malformed_handshake(self):
        import pickle

        with pytest.raises(TransportError, match="malformed"):
            transport.decode_handshake(pickle.dumps(["not", "a", "dict"]))
        with pytest.raises(TransportError, match="undecodable"):
            transport.decode_handshake(b"\x80garbage")


class TestParseAddress:
    def test_valid(self):
        assert transport.parse_address("node-3:7441") == ("node-3", 7441)

    @pytest.mark.parametrize("text", ["bare-host", ":99", "host:port"])
    def test_invalid(self, text):
        with pytest.raises(TransportError):
            transport.parse_address(text)


class TestStreamHelpers:
    def test_socket_round_trip(self):
        left, right = socket.socketpair()
        try:
            body = b"x" * 100_000  # multiple recv() chunks
            thread = threading.Thread(
                target=transport.send_frame,
                args=(left, transport.MSG_LEVEL, body),
            )
            thread.start()
            assert transport.recv_frame(right) == (transport.MSG_LEVEL, body)
            thread.join()
        finally:
            left.close()
            right.close()

    def test_peer_closing_mid_frame_is_truncation(self):
        left, right = socket.socketpair()
        try:
            frame = transport.encode_frame(transport.MSG_LEVEL, b"abcdef")
            left.sendall(frame[: len(frame) - 3])
            left.close()
            with pytest.raises(TransportError, match="truncated frame"):
                transport.recv_frame(right)
        finally:
            right.close()

    def test_peer_closing_between_frames(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(TransportError, match="closed by peer"):
                transport.recv_frame(right)
        finally:
            right.close()

    def test_corrupt_length_prefix_fails_fast(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack("<I", transport.MAX_FRAME_BYTES + 5))
            left.sendall(b"\x01\x53")
            with pytest.raises(TransportError, match="implausible"):
                transport.recv_frame(right)
        finally:
            left.close()
            right.close()


class TestUnifiedHeaderValidation:
    """Both frame paths — buffered ``decode_frame`` and streaming
    ``recv_frame`` — must apply the *same* header checks and reject a
    corrupt header with the *same* error, and ``recv_frame`` must do so
    before reading the body (a garbled kind byte must not make it wait
    for a body that may never come)."""

    CASES = [
        # (frame bytes, error pattern) — each corrupt in the header.
        (
            struct.pack(
                "<IBB", 4, transport.PROTOCOL_VERSION ^ 0xFF,
                transport.MSG_STOP,
            ) + b"xy",
            "unsupported protocol version",
        ),
        (
            struct.pack("<IBB", 4, transport.PROTOCOL_VERSION, 0x00)
            + b"xy",
            "unknown frame kind",
        ),
        (
            struct.pack("<IBB", 4, transport.PROTOCOL_VERSION, 0x7A)
            + b"xy",
            "unknown frame kind",
        ),
        (
            struct.pack(
                "<IBB", 1, transport.PROTOCOL_VERSION, transport.MSG_STOP
            ),
            "implausible frame length",
        ),
    ]

    @pytest.mark.parametrize("frame,pattern", CASES)
    def test_rejected_identically_on_both_paths(self, frame, pattern):
        with pytest.raises(TransportError, match=pattern) as decoded:
            transport.decode_frame(frame)
        left, right = socket.socketpair()
        try:
            left.sendall(frame)
            with pytest.raises(TransportError, match=pattern) as received:
                transport.recv_frame(right)
        finally:
            left.close()
            right.close()
        assert str(decoded.value) == str(received.value)

    def test_recv_rejects_header_before_body_arrives(self):
        """A valid-length header with a garbled kind is refused without
        the body: the sender never provides one, yet recv_frame returns
        immediately instead of blocking for it."""
        left, right = socket.socketpair()
        try:
            right.settimeout(5.0)
            left.sendall(
                struct.pack(
                    "<IBB", 1000, transport.PROTOCOL_VERSION, 0x7A
                )
            )  # promises a 998-byte body that will never come
            with pytest.raises(TransportError, match="unknown frame kind"):
                transport.recv_frame(right)
        finally:
            left.close()
            right.close()


class TestAnnounceCodec:
    DESCRIPTOR = {
        "shard_id": 1, "num_shards": 2, "index_backend": "bitset",
        "num_partitions": 3, "num_rows": 11, "graph_edges": 20,
        "graph_vertices": 12, "sharding": "uniform",
        "replica_id": 0, "num_replicas": 2,
    }

    def test_round_trip(self):
        body = transport.encode_announce(
            ("node-3", 7441), self.DESCRIPTOR, seed=99
        )
        address, descriptor, seed = transport.decode_announce(body)
        assert address == ("node-3", 7441)
        assert descriptor == self.DESCRIPTOR
        assert seed == 99

    def test_frame_round_trip_as_announce_kind(self):
        body = transport.encode_announce(
            ("h", 1), self.DESCRIPTOR, seed=0
        )
        kind, decoded = transport.decode_frame(
            transport.encode_frame(transport.MSG_ANNOUNCE, body)
        )
        assert kind == transport.MSG_ANNOUNCE
        assert transport.decode_announce(decoded)[2] == 0

    def test_protocol_field_is_checked(self):
        import pickle

        body = pickle.dumps({
            "protocol": "smoke-signals", "seed": 0,
            "descriptor": self.DESCRIPTOR, "address": ("h", 1),
        })
        with pytest.raises(TransportError, match="declares protocol"):
            transport.decode_announce(body)

    def test_malformed_address_is_refused(self):
        import pickle

        body = pickle.dumps({
            "protocol": transport.PROTOCOL_VERSION, "seed": 0,
            "descriptor": self.DESCRIPTOR, "address": "not-a-pair",
        })
        with pytest.raises(TransportError, match="malformed address"):
            transport.decode_announce(body)

    def test_undecodable_body_is_refused(self):
        with pytest.raises(TransportError):
            transport.decode_announce(b"\x80garbage")


class TestQueryTaggedFrames:
    """The §2.8 multiplexed-query kinds: an 8-byte little-endian query
    id ahead of the unchanged legacy body."""

    def test_round_trip_every_query_kind(self):
        for kind in sorted(transport.QUERY_KINDS | {transport.MSG_CANCEL}):
            body = transport.encode_query_body(42, b"payload")
            assert transport.decode_frame(
                transport.encode_frame(kind, body)
            ) == (kind, body)

    def test_query_kinds_is_the_tagged_set(self):
        # Everything in QUERY_KINDS — and nothing else — leads with the
        # u64 tag; the chaos sniffer and the worker dispatch both key
        # off this set.
        assert transport.QUERY_KINDS == frozenset({
            transport.MSG_QJOB, transport.MSG_QLEVEL,
            transport.MSG_QREPLY, transport.MSG_QCOLLECT,
            transport.MSG_QERROR, transport.MSG_CANCEL,
        })

    def test_tag_layout_is_the_documented_one(self):
        # docs/WIRE_FORMAT.md §2.8: u64 LE query id, then the body.
        assert transport.encode_query_body(7, b"payload").hex() == (
            "0700000000000000" + b"payload".hex()
        )
        assert transport.encode_frame(
            transport.MSG_CANCEL, transport.encode_query_body(7)
        ).hex() == "0a00000001580700000000000000"

    def test_split_round_trip(self):
        for query_id in (0, 1, 7, 2**32, 2**64 - 1):
            for payload in (b"", b"x", b"payload" * 100):
                tagged = transport.encode_query_body(query_id, payload)
                assert transport.split_query_body(tagged) == (
                    query_id, payload
                )

    def test_query_id_must_fit_u64(self):
        with pytest.raises(TransportError, match="fit u64"):
            transport.encode_query_body(-1)
        with pytest.raises(TransportError, match="fit u64"):
            transport.encode_query_body(2**64)
        with pytest.raises(TransportError, match="fit u64"):
            transport.encode_query_body("7")

    def test_short_body_is_refused(self):
        with pytest.raises(
            TransportError,
            match="3 bytes is shorter than its 8-byte query id tag",
        ):
            transport.split_query_body(b"\x01\x02\x03")
        with pytest.raises(TransportError, match="shorter"):
            transport.split_query_body(b"")
        # Exactly the tag is legal: an empty legacy body (QCOLLECT,
        # CANCEL).
        assert transport.split_query_body(
            transport.encode_query_body(9)
        ) == (9, b"")
