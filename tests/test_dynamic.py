"""Dynamic hypergraphs: mutation batches, row layout, incremental stores.

Pins the contracts the whole dynamic stack leans on:

* :class:`MutationBatch` normalisation, identity and JSON round-trip
  (the daemon's ``mutate`` op sends batches as line-JSON);
* :meth:`DynamicHypergraph.apply` up-front validation — a rejected
  batch leaves the graph byte-for-byte untouched;
* the ROW-LAYOUT INVARIANT: tombstones keep their slots, inserts
  append fresh max ids, so global rows never shift;
* incremental store maintenance being *structurally identical* to a
  from-scratch rebuild, on every index backend — not just equal query
  answers but equal postings/masks/containers.
"""

import random

import pytest

from repro import Hypergraph
from repro.errors import HypergraphError
from repro.hypergraph import (
    INDEX_BACKENDS,
    DynamicHypergraph,
    MutationBatch,
    PartitionedStore,
    ShardedStore,
)
from repro.testing import make_mutable_instance, random_mutation_schedule


def small_graph():
    return Hypergraph(
        labels=["A", "C", "A", "A", "B", "C", "A"],
        edges=[{2, 4}, {4, 6}, {0, 1, 2}, {3, 5, 6},
               {0, 1, 4, 6}, {2, 3, 4, 5}],
    )


def labelled_graph():
    return Hypergraph(
        labels=["A", "B", "A", "B"],
        edges=[{0, 1}, {1, 2}, {2, 3}],
        edge_labels=["x", "y", "x"],
    )


# ---------------------------------------------------------------------------
# MutationBatch
# ---------------------------------------------------------------------------

class TestMutationBatch:
    def test_vertices_normalised_sorted_deduped(self):
        batch = MutationBatch(inserts=[(3, 1, 3, 2)])
        assert batch.inserts == (((1, 2, 3), None),)

    def test_labelled_insert_pair_form(self):
        batch = MutationBatch(inserts=[((2, 0), "x")])
        assert batch.inserts == (((0, 2), "x"),)

    def test_bool(self):
        assert not MutationBatch()
        assert MutationBatch(deletes=[0])
        assert MutationBatch(add_vertices=["A"])

    def test_eq_hash_ignore_input_order_of_vertices(self):
        first = MutationBatch(inserts=[(1, 2)], deletes=[0])
        second = MutationBatch(inserts=[(2, 1)], deletes=[0])
        assert first == second
        assert hash(first) == hash(second)
        assert first != MutationBatch(inserts=[(1, 2)])

    def test_json_round_trip(self):
        batch = MutationBatch(
            inserts=[(0, 2), ((1, 3), "x")],
            deletes=[4, 1],
            add_vertices=["B", "A"],
        )
        assert MutationBatch.from_json(batch.to_json()) == batch

    def test_from_json_tolerates_missing_keys(self):
        assert MutationBatch.from_json({}) == MutationBatch()

    def test_from_json_rejects_non_dict(self):
        with pytest.raises(HypergraphError):
            MutationBatch.from_json([1, 2, 3])


# ---------------------------------------------------------------------------
# DynamicHypergraph.apply — validation and atomicity
# ---------------------------------------------------------------------------

class TestApplyValidation:
    def snapshot(self, graph):
        return (
            graph.version,
            graph.num_vertices,
            graph.num_edges,
            graph.num_slots,
            graph.rows_by_signature(),
        )

    def check_rejected(self, graph, batch):
        before = self.snapshot(graph)
        with pytest.raises(HypergraphError):
            graph.apply(batch)
        assert self.snapshot(graph) == before

    def test_delete_unknown_edge(self):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        self.check_rejected(graph, MutationBatch(deletes=[99]))

    def test_delete_dead_edge(self):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        graph.apply(MutationBatch(deletes=[1]))
        self.check_rejected(graph, MutationBatch(deletes=[1]))

    def test_double_delete_in_one_batch(self):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        self.check_rejected(graph, MutationBatch(deletes=[2, 2]))

    def test_insert_unknown_vertex(self):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        self.check_rejected(graph, MutationBatch(inserts=[(0, 99)]))

    def test_insert_empty_edge(self):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        self.check_rejected(graph, MutationBatch(inserts=[()]))

    def test_labelled_graph_requires_edge_label(self):
        graph = DynamicHypergraph.from_hypergraph(labelled_graph())
        self.check_rejected(graph, MutationBatch(inserts=[(0, 3)]))

    def test_unlabelled_graph_rejects_edge_label(self):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        self.check_rejected(graph, MutationBatch(inserts=[((0, 3), "x")]))

    def test_rejected_batch_is_atomic(self):
        # A batch with a valid delete AND an invalid insert must apply
        # neither half.
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        self.check_rejected(
            graph, MutationBatch(deletes=[0], inserts=[(0, 99)])
        )
        assert graph.is_live(0)

    def test_insert_may_reference_fresh_vertices(self):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        result = graph.apply(
            MutationBatch(inserts=[(0, 7)], add_vertices=["B"])
        )
        assert len(result.inserted) == 1
        assert graph.num_vertices == 8
        assert graph.edge(result.inserted[0].edge_id) == frozenset({0, 7})


class TestApplySemantics:
    def test_version_bumps_on_every_apply(self):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        assert graph.version == 0
        graph.apply(MutationBatch())
        assert graph.version == 1
        graph.apply(MutationBatch(deletes=[0]))
        assert graph.version == 2

    def test_duplicate_insert_is_skipped_not_an_error(self):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        result = graph.apply(MutationBatch(inserts=[(2, 4)]))
        assert result.inserted == ()
        assert result.skipped == (((2, 4), None),)
        assert graph.num_edges == 6

    def test_delete_then_reinsert_gets_fresh_id(self):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        result = graph.apply(
            MutationBatch(deletes=[0], inserts=[(2, 4)])
        )
        (mutation,) = result.inserted
        assert mutation.edge_id == 6  # never reuses slot 0
        assert not graph.is_live(0)
        assert graph.num_slots == 7

    def test_tombstones_keep_row_coordinates(self):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        rows_before = graph.rows_by_signature()
        graph.apply(MutationBatch(deletes=[0]))
        # The tombstoned slot stays in the row layout...
        assert graph.rows_by_signature() == rows_before
        # ...but leaves the live read interface.
        assert graph.num_edges == 5
        assert frozenset({2, 4}) not in graph.edges
        with pytest.raises(HypergraphError):
            graph.edge(0)

    def test_deleted_mutations_carry_stable_rows(self):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        rows = graph.rows_by_signature()
        result = graph.apply(MutationBatch(deletes=[3]))
        (mutation,) = result.deleted
        assert rows[mutation.signature][mutation.row] == 3

    def test_to_hypergraph_is_dense_and_tombstone_free(self):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        graph.apply(MutationBatch(deletes=[1, 4], inserts=[(0, 3)]))
        snapshot = graph.to_hypergraph()
        assert isinstance(snapshot, Hypergraph)
        assert snapshot.num_edges == graph.num_edges == 5
        assert sorted(map(sorted, snapshot.edges)) == sorted(
            map(sorted, graph.edges)
        )

    def test_from_hypergraph_clone_preserves_tombstones_and_version(self):
        graph = DynamicHypergraph.from_hypergraph(small_graph())
        graph.apply(MutationBatch(deletes=[2], inserts=[(1, 5)]))
        clone = DynamicHypergraph.from_hypergraph(graph)
        assert clone.version == graph.version
        assert clone.num_slots == graph.num_slots
        assert clone.rows_by_signature() == graph.rows_by_signature()
        assert not clone.is_live(2)
        # The clone is independent: mutating it leaves the original alone.
        clone.apply(MutationBatch(deletes=[0]))
        assert graph.is_live(0)

    def test_labelled_inserts_and_deletes(self):
        graph = DynamicHypergraph.from_hypergraph(labelled_graph())
        result = graph.apply(
            MutationBatch(deletes=[0], inserts=[((0, 3), "y")])
        )
        (mutation,) = result.inserted
        assert graph.edge_label(mutation.edge_id) == "y"
        # Same vertices, different edge label: a distinct edge, not a dup.
        result = graph.apply(MutationBatch(inserts=[((0, 3), "x")]))
        assert len(result.inserted) == 1


# ---------------------------------------------------------------------------
# Incremental store maintenance ≡ from-scratch rebuild (structurally)
# ---------------------------------------------------------------------------

def index_state(index):
    """The backend's complete internal posting state, comparable."""
    if index.backend == "merge":
        return dict(index._postings)
    if index.backend == "bitset":
        return (tuple(index._row_to_edge), dict(index._masks))
    assert index.backend == "adaptive"
    return (
        tuple(index._row_to_edge),
        {v: dict(chunks) for v, chunks in index._chunk_maps.items()},
        None if index._flat is None else dict(index._flat),
    )


def store_state(store):
    return {
        signature: (
            partition.edge_ids,
            partition.row_ids,
            index_state(partition.index),
        )
        for signature, partition in store._partitions.items()
        if partition.row_ids  # rebuilds never materialise empty layouts
    }


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_partitioned_store_incremental_equals_rebuild(backend):
    rng = random.Random(0xD15C0)
    checked = 0
    for attempt in range(30):
        instance = make_mutable_instance(rng)
        if instance is None:
            continue
        data, _, _ = instance
        graph = DynamicHypergraph.from_hypergraph(data)
        store = PartitionedStore(graph, index_backend=backend)
        for batch in random_mutation_schedule(rng, data, steps=6):
            result = graph.apply(batch)
            store.apply_mutation_result(result)
            rebuilt = PartitionedStore(graph, index_backend=backend)
            assert store_state(store) == store_state(rebuilt), (
                f"incremental {backend} store diverged from rebuild at "
                f"version {graph.version} (attempt {attempt})"
            )
        checked += 1
        if checked >= 8:
            break
    assert checked >= 8


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_sharded_store_incremental_covers_mutated_graph(backend):
    """Every shard maintains its slice; concatenated in range order the
    shards reproduce the mutated graph's global row layout exactly."""
    rng = random.Random(0x5A4D)
    checked = 0
    for _ in range(30):
        instance = make_mutable_instance(rng)
        if instance is None:
            continue
        data, _, _ = instance
        graph = DynamicHypergraph.from_hypergraph(data)
        store = ShardedStore(graph, num_shards=3, index_backend=backend)
        for batch in random_mutation_schedule(rng, data, steps=6):
            result = graph.apply(batch)
            store.apply_mutation_result(result)
            live = {
                signature: [e for e in rows if graph.is_live(e)]
                for signature, rows in graph.rows_by_signature().items()
            }
            for signature, rows in graph.rows_by_signature().items():
                ordered = sorted(
                    (
                        (shard.row_base(signature), shard)
                        for shard in store.shards
                        if shard.partition(signature) is not None
                    ),
                    key=lambda pair: pair[0],
                )
                concat_rows = []
                concat_edges = []
                for _, shard in ordered:
                    partition = shard.partition(signature)
                    concat_rows.extend(partition.row_ids)
                    concat_edges.extend(partition.edge_ids)
                assert concat_rows == rows
                assert concat_edges == live[signature]
            for shard in store.shards:
                descriptor = shard.describe()
                assert descriptor.graph_version == graph.version
                assert descriptor.graph_edges == graph.num_edges
        checked += 1
        if checked >= 5:
            break
    assert checked >= 5
