"""Unit tests for the matching-order computation (Algorithm 3)."""

from __future__ import annotations

import random

import pytest

from repro import Hypergraph, PartitionedStore
from repro.core.ordering import compute_matching_order, is_connected_order
from repro.errors import QueryError


class TestComputeMatchingOrder:
    def test_fig1_starts_with_min_cardinality(self, fig1_data, fig1_query):
        """All Fig. 1 query signatures have cardinality 2; the tie breaks
        to query edge 0 and the order must stay connected."""
        store = PartitionedStore(fig1_data)
        order = compute_matching_order(fig1_query, store)
        assert sorted(order) == [0, 1, 2]
        assert order[0] == 0
        assert is_connected_order(fig1_query, order)

    def test_prefers_rare_signature(self):
        data = Hypergraph(
            ["A"] * 6 + ["B"],
            [{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}],
        )
        # Query edge 1 has the rare {A,B} signature (cardinality 1).
        query = Hypergraph(["A", "A", "B"], [{0, 1}, {1, 2}])
        order = compute_matching_order(query, PartitionedStore(data))
        assert order[0] == 1

    def test_connectivity_enforced_over_cardinality(self):
        data = Hypergraph(
            ["A", "A", "B", "B", "C"],
            [{0, 1}, {2, 3}, {1, 2}, {3, 4}],
        )
        query = Hypergraph(
            ["A", "A", "B", "B", "C"],
            [{0, 1}, {1, 2}, {2, 3}, {3, 4}],
        )
        order = compute_matching_order(query, PartitionedStore(data))
        assert is_connected_order(query, order)

    def test_empty_query_raises(self, fig1_data):
        with pytest.raises(QueryError):
            compute_matching_order(
                Hypergraph(["A"], []), PartitionedStore(fig1_data)
            )

    def test_disconnected_query_raises(self, fig1_data):
        query = Hypergraph(["A", "A", "A", "A"], [{0, 1}, {2, 3}])
        with pytest.raises(QueryError):
            compute_matching_order(query, PartitionedStore(fig1_data))

    def test_deterministic(self, fig1_data, fig1_query):
        store = PartitionedStore(fig1_data)
        orders = {compute_matching_order(fig1_query, store) for _ in range(5)}
        assert len(orders) == 1

    def test_random_queries_get_connected_orders(self):
        from repro.hypergraph.generators import random_connected_hypergraph

        rng = random.Random(3)
        data = random_connected_hypergraph(30, 25, 3, 4, rng)
        store = PartitionedStore(data)
        for seed in range(5):
            query = random_connected_hypergraph(8, 5, 3, 3, random.Random(seed))
            order = compute_matching_order(query, store)
            assert is_connected_order(query, order)


class TestIsConnectedOrder:
    def test_valid_order(self, fig1_query):
        assert is_connected_order(fig1_query, (0, 2, 1))

    def test_disconnected_order(self):
        query = Hypergraph(["A"] * 5, [{0, 1}, {1, 2}, {3, 4}, {2, 3}])
        assert not is_connected_order(query, (0, 2, 1, 3))
        assert is_connected_order(query, (0, 1, 3, 2))

    def test_non_permutation_rejected(self, fig1_query):
        assert not is_connected_order(fig1_query, (0, 1))
        assert not is_connected_order(fig1_query, (0, 1, 1))
        assert not is_connected_order(fig1_query, ())
