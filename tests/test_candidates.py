"""Unit tests for candidate generation (Algorithm 4, Example V.1)."""

from __future__ import annotations

from repro import Hypergraph, PartitionedStore
from repro.core.candidates import generate_candidates, vertex_step_map
from repro.core.counters import MatchCounters
from repro.core.plan import build_execution_plan


def run_step(data, query, order, matched, counters=None):
    plan = build_execution_plan(query, order)
    step_plan = plan.steps[len(matched)]
    store = PartitionedStore(data)
    partition = store.partition(step_plan.signature)
    vmap = vertex_step_map(data, matched)
    return generate_candidates(
        data, partition, step_plan, matched, vmap, counters
    )


class TestExampleV1:
    def test_paper_example(self, fig1_data, fig1_query):
        """Example V.1: with m = (e1, e3) (0-based e0, e2) the candidates
        of {u0,u1,u3,u4} are he(v0,s) ∩ he(v1,s) ∩ he(v4,s) = {e5}
        (0-based e4)."""
        candidates = run_step(fig1_data, fig1_query, (0, 1, 2), (0, 2))
        assert candidates == (4,)

    def test_second_branch(self, fig1_data, fig1_query):
        """The other partial embedding (e2, e4) → candidate {e6} (e5)."""
        candidates = run_step(fig1_data, fig1_query, (0, 1, 2), (1, 3))
        assert candidates == (5,)

    def test_step1_candidates(self, fig1_data, fig1_query):
        """After matching {u2,u4}→e1(0-based 0)={v2,v4}, the adjacent
        3-ary edge must touch v2: only e3 (0-based 2) qualifies."""
        candidates = run_step(fig1_data, fig1_query, (0, 1, 2), (0,))
        assert candidates == (2,)


class TestScanStep:
    def test_first_step_returns_partition(self, fig1_data, fig1_query):
        candidates = run_step(fig1_data, fig1_query, (0, 1, 2), ())
        assert candidates == (0, 1)

    def test_missing_partition_is_empty(self, fig1_data):
        query = Hypergraph(["B", "B"], [{0, 1}])
        candidates = run_step(fig1_data, query, (0,), ())
        assert candidates == ()


class TestPruning:
    def test_degree_requirement_filters_anchors(self):
        """Observation V.4: the anchor's partial degree must match."""
        data = Hypergraph(
            ["A", "A", "A", "A"],
            [{0, 1}, {1, 2}, {2, 3}, {0, 3}],
        )
        query = Hypergraph(["A", "A", "A"], [{0, 1}, {1, 2}, {0, 2}])
        # Match edges {0,1}→{0,1} then {1,2}→{1,2}; the closing edge
        # {0,2} needs a data edge touching both v0 and v2 — none exists.
        candidates = run_step(data, query, (0, 1, 2), (0, 1))
        assert candidates == ()

    def test_non_incident_vertices_excluded(self):
        """Observation V.3 via Algorithm 4 line 1: vertices of images of
        non-adjacent query edges cannot anchor candidates."""
        data = Hypergraph(
            ["A", "A", "A", "A", "A"],
            [{0, 1}, {1, 2}, {2, 3}, {3, 4}],
        )
        query = Hypergraph(["A", "A", "A", "A"], [{0, 1}, {1, 2}, {2, 3}])
        plan = build_execution_plan(query, (0, 1, 2))
        assert plan.steps[2].nonadjacent_prev == (0,)
        candidates = run_step(data, query, (0, 1, 2), (0, 1))
        # Candidates for the last edge anchored on the image of vertex 2:
        # edge {2,3} qualifies; {1,2} would close back onto the
        # non-adjacent region and is pruned later by validation, but
        # {0,1}'s vertices cannot serve as anchors at all.
        assert 2 in candidates

    def test_counters_record_candidates(self, fig1_data, fig1_query):
        counters = MatchCounters()
        run_step(fig1_data, fig1_query, (0, 1, 2), (0, 2), counters)
        assert counters.candidates == 1
        assert counters.work_units > 0


class TestVertexStepMap:
    def test_map_contents(self, fig1_data):
        vmap = vertex_step_map(fig1_data, (0, 2))
        assert vmap[2] == {0, 1}
        assert vmap[4] == {0}
        assert vmap[0] == {1}
        assert 6 not in vmap

    def test_empty_embedding(self, fig1_data):
        assert vertex_step_map(fig1_data, ()) == {}
