"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import main
from repro.hypergraph.io import save_native


def run_cli(*argv: str) -> tuple:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def fig1_files(tmp_path, fig1_data, fig1_query):
    data_path = str(tmp_path / "data.hg")
    query_path = str(tmp_path / "query.hg")
    save_native(fig1_data, data_path)
    save_native(fig1_query, query_path)
    return data_path, query_path


class TestDatasets:
    def test_lists_all_ten(self):
        code, output = run_cli("datasets")
        assert code == 0
        for name in ("HC", "MA", "AR"):
            assert name in output


class TestStats:
    def test_stats_from_file(self, fig1_files):
        data_path, _ = fig1_files
        code, output = run_cli("stats", data_path)
        assert code == 0
        assert "|V|: 7" in output

    def test_stats_from_dataset_name(self):
        code, output = run_cli("stats", "HC")
        assert code == 0
        assert "dataset: HC" in output

    def test_missing_file_errors(self):
        code, output = run_cli("stats", "/nonexistent/file.hg")
        assert code == 1
        assert "error:" in output


class TestSample:
    def test_sample_writes_query(self, tmp_path, fig1_files):
        out_path = str(tmp_path / "q.hg")
        code, output = run_cli(
            "sample", "CH", "--setting", "q2", "--out", out_path
        )
        assert code == 0
        assert "sampled q2 query" in output
        from repro.hypergraph.io import load_native

        query = load_native(out_path)
        assert query.num_edges == 2

    def test_unknown_setting_errors(self, tmp_path):
        code, output = run_cli(
            "sample", "CH", "--setting", "q9", "--out", str(tmp_path / "q.hg")
        )
        assert code == 1


class TestPlan:
    def test_plan_output(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli("plan", data_path, query_path)
        assert code == 0
        assert "SCAN" in output and "SINK" in output

    def test_plan_explain(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli("plan", data_path, query_path, "--explain")
        assert code == 0
        assert "PlanEstimate" in output


class TestIndex:
    def test_index_roundtrip(self, tmp_path, fig1_files):
        data_path, _ = fig1_files
        out_path = str(tmp_path / "fig1.hgstore")
        code, output = run_cli("index", data_path, "--out", out_path)
        assert code == 0
        assert "3 partitions" in output
        from repro.hypergraph import load_store as load_store_file

        store = load_store_file(out_path)
        assert store.num_partitions() == 3


class TestMatch:
    def test_match_hgmatch(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli("match", data_path, query_path)
        assert code == 0
        assert output.startswith("2 embeddings")

    @pytest.mark.parametrize("engine", ["CFL-H", "DAF-H", "CECI-H", "RapidMatch-H"])
    def test_match_baselines(self, fig1_files, engine):
        data_path, query_path = fig1_files
        code, output = run_cli("match", data_path, query_path, "--engine", engine)
        assert code == 0
        assert output.startswith("2 embeddings")

    def test_match_parallel(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli("match", data_path, query_path, "--workers", "2")
        assert code == 0
        assert output.startswith("2 embeddings")

    def test_match_processes(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--executor", "processes", "--shards", "2",
        )
        assert code == 0
        assert output.startswith("2 embeddings")

    def test_match_shards_implies_processes(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path, "--shards", "2"
        )
        assert code == 0
        assert output.startswith("2 embeddings")

    def test_shards_rejected_for_non_process_executors(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--executor", "threads", "--shards", "4",
        )
        assert code == 1
        assert "--executor processes" in output

    def test_match_balanced_sharding(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--executor", "processes", "--shards", "2",
            "--sharding", "balanced",
        )
        assert code == 0
        assert output.startswith("2 embeddings")

    def test_sharding_implies_processes(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path, "--sharding", "balanced",
        )
        assert code == 0
        assert output.startswith("2 embeddings")

    def test_sharding_rejected_for_non_shard_executors(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--executor", "threads", "--sharding", "balanced",
        )
        assert code == 1
        assert "--sharding applies" in output

    def test_match_rebalance(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--executor", "processes", "--shards", "2", "--rebalance",
        )
        assert code == 0
        assert "rebalance: moved" in output
        assert "2 embeddings" in output

    def test_rebalance_requires_shard_executor(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--executor", "threads", "--rebalance",
        )
        assert code == 1
        assert "--rebalance needs" in output

    def test_baselines_reject_executor_flags(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--engine", "CFL-H", "--executor", "processes", "--shards", "2",
        )
        assert code == 1
        assert "HGMatch engine only" in output

    def test_print_embeddings_rejects_executor(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--print-embeddings", "--executor", "processes", "--shards", "2",
        )
        assert code == 1
        assert "sequential" in output

    def test_match_sockets(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--executor", "sockets", "--shards", "2",
        )
        assert code == 0
        assert output.startswith("2 embeddings")

    def test_match_hosts_implies_sockets(self, fig1_files, fig1_data):
        import threading

        from repro.parallel import ShardWorker

        data_path, query_path = fig1_files
        workers = [
            ShardWorker(fig1_data, shard_id, 2) for shard_id in range(2)
        ]
        addresses = [worker.bind() for worker in workers]
        threads = [
            threading.Thread(
                target=worker.serve_forever,
                kwargs={"max_sessions": 1},
                daemon=True,
            )
            for worker in workers
        ]
        for thread in threads:
            thread.start()
        try:
            hosts = ",".join(f"{host}:{port}" for host, port in addresses)
            code, output = run_cli(
                "match", data_path, query_path, "--hosts", hosts
            )
            assert code == 0
            assert output.startswith("2 embeddings")
        finally:
            for worker in workers:
                worker.close()

    def test_hosts_rejected_for_non_socket_executors(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--executor", "threads", "--hosts", "localhost:7441",
        )
        assert code == 1
        assert "--executor sockets" in output

    def test_hosts_shards_contradiction(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--hosts", "localhost:7441,localhost:7442", "--shards", "3",
        )
        assert code == 1
        assert "contradicts" in output

    def test_bad_host_address(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path, "--hosts", "no-port-here"
        )
        assert code == 1
        assert "host:port" in output

    def test_match_simulated(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--executor", "simulated", "--workers", "3",
        )
        assert code == 0
        assert output.startswith("2 embeddings")

    def test_print_embeddings(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path, "--print-embeddings"
        )
        assert code == 0
        assert output.count("{") >= 2

    def test_serve_shard_rejects_bad_shard_arithmetic(self, fig1_files):
        data_path, _ = fig1_files
        code, output = run_cli(
            "serve-shard", data_path, "--shard-id", "5", "--num-shards", "2"
        )
        assert code == 1
        assert "out of range" in output
        code, output = run_cli(
            "serve-shard", data_path, "--shard-id", "0", "--num-shards", "0"
        )
        assert code == 1

    def test_serve_shard_serves_one_session(self, fig1_files, fig1_data):
        import io
        import threading

        from repro import HGMatch
        from repro.cli import main as cli_main
        from repro.parallel import NetShardExecutor

        data_path, _ = fig1_files
        out = io.StringIO()
        # Pre-bind so the port is known before the server thread starts.
        ready = threading.Event()
        result = {}

        def serve():
            result["code"] = cli_main(
                [
                    "serve-shard", data_path, "--shard-id", "0",
                    "--num-shards", "1", "--max-sessions", "1",
                ],
                out=out,
            )

        class SignallingOut(io.StringIO):
            def flush(self):
                ready.set()

        out = SignallingOut()
        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert ready.wait(timeout=10.0)
        banner = out.getvalue()
        address = banner.strip().rsplit(" on ", 1)[1]
        host, port = address.rsplit(":", 1)
        engine = HGMatch(fig1_data)
        executor = NetShardExecutor(addresses=[(host, int(port))])
        try:
            query = fig1_data  # any connected query; the data itself works
            assert executor.run(engine, query).embeddings == engine.count(
                query
            )
        finally:
            executor.close()
            engine.close()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert result["code"] == 0

    def test_disconnected_query_errors(self, tmp_path, fig1_files):
        from repro import Hypergraph

        data_path, _ = fig1_files
        bad = Hypergraph(["A", "B", "A", "B"], [{0, 1}, {2, 3}])
        bad_path = str(tmp_path / "bad.hg")
        save_native(bad, bad_path)
        code, output = run_cli("match", data_path, bad_path)
        assert code == 1
        assert "error:" in output


class TestReplicaFlags:
    def test_match_replicated_sockets(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--executor", "sockets", "--shards", "2", "--replicas", "2",
        )
        assert code == 0
        assert output.startswith("2 embeddings")

    def test_replicas_implies_sockets(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--shards", "2", "--replicas", "2",
        )
        assert code == 0
        assert output.startswith("2 embeddings")

    def test_replicas_rejected_for_non_socket_executors(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--executor", "threads", "--replicas", "2",
        )
        assert code == 1
        assert "--executor sockets" in output

    def test_replicas_must_be_positive(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path, "--replicas", "0"
        )
        assert code == 1
        assert ">= 1" in output

    def test_hosts_replicas_divisibility(self, fig1_files):
        data_path, query_path = fig1_files
        code, output = run_cli(
            "match", data_path, query_path,
            "--hosts", "h:1,h:2,h:3", "--replicas", "2",
        )
        assert code == 1
        assert "divide" in output

    def test_serve_shard_rejects_bad_replica_arithmetic(self, fig1_files):
        data_path, _ = fig1_files
        code, output = run_cli(
            "serve-shard", data_path, "--shard-id", "0",
            "--num-shards", "1", "--replica-id", "2",
            "--num-replicas", "2",
        )
        assert code == 1
        assert "--replica-id 2 out of range" in output
        code, output = run_cli(
            "serve-shard", data_path, "--shard-id", "0",
            "--num-shards", "1", "--num-replicas", "0",
        )
        assert code == 1
        assert "--num-replicas must be >= 1" in output

    def test_serve_shard_banner_names_replica(self, fig1_files):
        data_path, _ = fig1_files
        code, output = run_cli(
            "serve-shard", data_path, "--shard-id", "0",
            "--num-shards", "2", "--replica-id", "1",
            "--num-replicas", "2", "--max-sessions", "0",
        )
        assert code == 0
        assert "serving shard 0/2 (replica 1/2)" in output
        # Unreplicated banners keep the pre-replication wording.
        code, output = run_cli(
            "serve-shard", data_path, "--shard-id", "0",
            "--num-shards", "2", "--max-sessions", "0",
        )
        assert code == 0
        assert "serving shard 0/2 of" in output
        assert "replica" not in output


class TestSupervise:
    def test_validates_arguments(self, fig1_files):
        data_path, _ = fig1_files
        code, output = run_cli(
            "supervise", data_path, "--num-shards", "0"
        )
        assert code == 1 and "--num-shards" in output
        code, output = run_cli(
            "supervise", data_path, "--num-shards", "1",
            "--restart-budget", "-1",
        )
        assert code == 1 and "--restart-budget" in output
        code, output = run_cli(
            "supervise", data_path, "--num-shards", "1",
            "--registry", "--announce", "h:1",
        )
        assert code == 1 and "mutually exclusive" in output
        code, output = run_cli(
            "supervise", data_path, "--num-shards", "1",
            "--announce", "no-port",
        )
        assert code == 1 and "HOST:PORT" in output

    def test_supervises_for_duration(self, fig1_files):
        data_path, _ = fig1_files
        code, output = run_cli(
            "supervise", data_path, "--num-shards", "2",
            "--registry", "--duration", "0.5",
            "--heartbeat-interval", "0.1",
        )
        assert code == 0
        assert "registry on 127.0.0.1:" in output
        assert "shard 0 replica 0 on 127.0.0.1:" in output
        assert "shard 1 replica 0 on 127.0.0.1:" in output
        assert "supervising 2 worker(s)" in output
        assert "supervision ended: 0 restart(s), 2 worker(s) live" in output

    def test_serve_shard_announce_registers(self, fig1_files, fig1_data):
        import threading

        from repro.cli import main as cli_main
        from repro.parallel import WorkerRegistry

        data_path, _ = fig1_files
        with WorkerRegistry(heartbeat_interval=0.1) as registry:
            host, port = registry.address
            ready = threading.Event()

            class SignallingOut(io.StringIO):
                def flush(self):
                    ready.set()

            out = SignallingOut()
            result = {}

            def serve():
                result["code"] = cli_main(
                    [
                        "serve-shard", data_path, "--shard-id", "0",
                        "--num-shards", "1", "--max-sessions", "1",
                        "--announce", f"{host}:{port}",
                        "--heartbeat-interval", "0.1",
                    ],
                    out=out,
                )

            thread = threading.Thread(target=serve, daemon=True)
            thread.start()
            assert ready.wait(timeout=10.0)
            assert "announcing to" in out.getvalue()
            addresses = registry.wait_for(1, 1, timeout=10.0)
            # The announced address is the served one from the banner.
            banner_address = (
                out.getvalue().split(" on ", 1)[1].split(",")[0].strip()
            )
            bh, bp = banner_address.rsplit(":", 1)
            assert addresses == [(bh, int(bp))]
            # One session, served by a throwaway coordinator, ends it.
            from repro import HGMatch
            from repro.parallel import NetShardExecutor

            engine = HGMatch(fig1_data)
            executor = NetShardExecutor(addresses=[(bh, int(bp))])
            try:
                assert (
                    executor.run(engine, fig1_data).embeddings
                    == engine.count(fig1_data)
                )
            finally:
                executor.close()
                engine.close()
            thread.join(timeout=10.0)
            assert result["code"] == 0
