"""§VII-D case study — Q/A over a hypergraph knowledge base (Fig. 13).

Runs the two natural-language queries of the paper's case study against
the synthetic JF17K-style knowledge base:

* Query 1: football players who represented different teams in
  different matches (paper: 111 embeddings);
* Query 2: actors who played the same character in a TV show on
  different seasons (paper: 76 embeddings).

The counts are dataset-dependent; the shape to reproduce is a
non-trivial answer set of the same order of magnitude, with concrete
entity bindings available via vertex-mapping expansion.
"""

from __future__ import annotations

import pytest

from repro import HGMatch
from repro.bench import format_table
from repro.datasets import (
    build_knowledge_base,
    query_players_two_teams,
    query_recast_character,
)

from conftest import write_report


@pytest.fixture(scope="module")
def case_study():
    kb = build_knowledge_base()
    engine = HGMatch(kb)
    count_q1 = engine.count(query_players_two_teams())
    count_q2 = engine.count(query_recast_character())
    rows = [
        {
            "query": "Players for different teams in different matches",
            "paper": 111,
            "measured": count_q1,
        },
        {
            "query": "Actors recast as the same character across seasons",
            "paper": 76,
            "measured": count_q2,
        },
    ]
    report = format_table(rows, title="Case study — Fig. 13 queries on the KB")
    write_report("case_study", report)
    print("\n" + report)
    return engine, count_q1, count_q2


def test_case_study_counts_nontrivial(case_study):
    _, count_q1, count_q2 = case_study
    assert 10 <= count_q1 <= 1000
    assert 10 <= count_q2 <= 1000


def test_case_study_answers_expand_to_entities(case_study):
    """Every embedding yields a concrete entity binding, like the paper's
    Óscar Cardozo / Carlo Bonomi examples."""
    engine, _, _ = case_study
    query = query_players_two_teams()
    embedding = next(iter(engine.match(query)))
    mapping = next(embedding.vertex_mappings())
    assert len(mapping) == query.num_vertices
    # The player vertex (0) binds to a Player-typed entity.
    assert engine.data.label(mapping[0]) == "Player"


def test_case_study_query1_teams_differ(case_study):
    engine, _, _ = case_study
    for embedding in engine.match(query_players_two_teams()):
        mapping = next(embedding.vertex_mappings())
        assert mapping[1] != mapping[3]


def test_bench_case_study_query(benchmark, case_study):
    engine, count_q1, _ = case_study
    result = benchmark(lambda: engine.count(query_players_two_teams()))
    assert result == count_q1
