"""Benchmark: replicated socket pools under deterministic faults.

The robustness gate for the replicated shard runtime.  A 2-replica
loopback cluster runs a Fig. 8 workload slice while a seeded
:class:`~repro.parallel.chaos.FaultPlan` kills one worker process right
after the first LEVEL frame lands on it (the fault position is a frame
count, so every run reproduces the same mid-level kill).  Gates:

* **failover parity** — the faulted run must finish with counts
  bit-identical to the sequential engine on all three index backends,
  and the surviving pool must keep answering follow-up jobs exactly
  (always enforced);
* **fail-fast** — the same kill against an *unreplicated* pool must
  raise a clean ``SchedulerError`` naming the dead shard, quickly
  (bounded by a fraction of the I/O deadline: the coordinator notices
  the closed connection, it does not sit out the timeout);
* **overhead** — wall-clock of the faulted run vs the unfaulted
  replicated run is *recorded* (not gated: on single-core hosts the
  respawn/failover cost is noise-dominated), so multi-core CI trends
  stay visible.

Results land in ``BENCH_chaos.json`` at the repo root.  Run standalone
(``python benchmarks/bench_chaos.py``) or via pytest; the pytest entry
points are the gates.
"""

from __future__ import annotations

import json
import os
import time
from typing import List

from repro.bench import (
    FIG8_DATASETS,
    fig8_queries,
    make_engine,
    usable_cores,
)
from repro.datasets import load_dataset
from repro.errors import SchedulerError
from repro.parallel import FaultPlan, NetShardExecutor, spawn_local_cluster

BACKENDS = ("merge", "bitset", "adaptive")
NUM_SHARDS = 2
NUM_REPLICAS = 2
NUM_QUERIES = 3
IO_TIMEOUT = 60.0
FAILFAST_BUDGET = IO_TIMEOUT / 2  # EOF-driven, must beat the deadline

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_chaos.json",
)


def _workload():
    """The first ``NUM_QUERIES`` Fig. 8 queries of the first dataset."""
    dataset = FIG8_DATASETS[0]
    queries = [
        query for name, query in fig8_queries() if name == dataset
    ][:NUM_QUERIES]
    return dataset, queries


def _run_all(executor, engine, queries) -> List[int]:
    return [executor.run(engine, query).embeddings for query in queries]


def run_benchmark() -> dict:
    """Fault the replicated pool and verify exact counts; returns the
    JSON summary."""
    dataset, queries = _workload()
    failures: List[str] = []
    rows = []
    for backend in BACKENDS:
        engine = make_engine(load_dataset(dataset), index_backend=backend)
        try:
            expected = [engine.count(query) for query in queries]

            # Unfaulted replicated baseline (owns its own cluster).
            cluster = spawn_local_cluster(
                engine.data, NUM_SHARDS, index_backend=backend,
                num_replicas=NUM_REPLICAS,
            )
            try:
                executor = NetShardExecutor(
                    addresses=list(cluster.addresses),
                    num_replicas=NUM_REPLICAS,
                    index_backend=backend,
                    io_timeout=IO_TIMEOUT,
                )
                try:
                    started = time.perf_counter()
                    clean_counts = _run_all(executor, engine, queries)
                    clean_s = time.perf_counter() - started
                finally:
                    executor.close()
            finally:
                cluster.close()
            if clean_counts != expected:
                failures.append(
                    f"{backend}: unfaulted replicated pool returned "
                    f"{clean_counts}, sequential {expected}"
                )

            # Kill shard 0's replica 0 right after its first LEVEL
            # frame; the spare must carry the job and every follow-up
            # query, all bit-identical.
            plan = FaultPlan(seed=11)
            plan.kill_worker(0, 0, after_frames=2)
            cluster = spawn_local_cluster(
                engine.data, NUM_SHARDS, index_backend=backend,
                num_replicas=NUM_REPLICAS,
            )
            try:
                plan.arm_killer(
                    0, 0, lambda: cluster.kill_member(0, 0)
                )
                executor = NetShardExecutor(
                    addresses=list(cluster.addresses),
                    num_replicas=NUM_REPLICAS,
                    index_backend=backend,
                    io_timeout=IO_TIMEOUT,
                    chaos=plan,
                )
                try:
                    started = time.perf_counter()
                    faulted_counts = _run_all(executor, engine, queries)
                    faulted_s = time.perf_counter() - started
                finally:
                    executor.close()
            finally:
                cluster.close()
            if faulted_counts != expected:
                failures.append(
                    f"{backend}: faulted replicated pool returned "
                    f"{faulted_counts}, sequential {expected}"
                )
            if not all(fault.consumed for fault in plan.faults):
                failures.append(f"{backend}: kill fault never fired")

            # The same kill with zero spare replicas: a clean, prompt
            # SchedulerError naming the dead shard — never a hang.
            plan = FaultPlan(seed=11)
            plan.kill_worker(0, 0, after_frames=2)
            cluster = spawn_local_cluster(
                engine.data, NUM_SHARDS, index_backend=backend
            )
            failfast_s = None
            try:
                plan.arm_killer(
                    0, 0, lambda: cluster.kill_member(0, 0)
                )
                executor = NetShardExecutor(
                    addresses=list(cluster.addresses),
                    index_backend=backend,
                    io_timeout=IO_TIMEOUT,
                    chaos=plan,
                )
                try:
                    started = time.perf_counter()
                    try:
                        executor.run(engine, queries[0])
                        failures.append(
                            f"{backend}: unreplicated kill did not raise"
                        )
                    except SchedulerError as exc:
                        failfast_s = time.perf_counter() - started
                        if "disconnected mid-job" not in str(exc):
                            failures.append(
                                f"{backend}: unexpected failure mode: "
                                f"{exc}"
                            )
                finally:
                    executor.close()
            finally:
                cluster.close()
            if failfast_s is not None and failfast_s > FAILFAST_BUDGET:
                failures.append(
                    f"{backend}: fail-fast took {failfast_s:.1f}s "
                    f"(budget {FAILFAST_BUDGET:.1f}s)"
                )
        finally:
            engine.close()

        rows.append(
            {
                "backend": backend,
                "clean_seconds": round(clean_s, 6),
                "faulted_seconds": round(faulted_s, 6),
                "failover_overhead": round(
                    faulted_s / max(clean_s, 1e-12), 3
                ),
                "failfast_seconds": (
                    None if failfast_s is None else round(failfast_s, 6)
                ),
                "counts": faulted_counts,
            }
        )

    return {
        "benchmark": "chaos",
        "workload": {
            "dataset": dataset,
            "queries": len(queries),
        },
        "num_shards": NUM_SHARDS,
        "num_replicas": NUM_REPLICAS,
        "io_timeout_seconds": IO_TIMEOUT,
        "cores": usable_cores(),
        "fault": "kill shard 0 replica 0 after coordinator frame 2",
        "failures": failures,
        "rows": rows,
    }


def write_summary(summary: dict) -> str:
    with open(RESULT_PATH, "w", encoding="utf-8") as stream:
        json.dump(summary, stream, indent=2)
        stream.write("\n")
    return RESULT_PATH


# ----------------------------------------------------------------------
# pytest entry points (the gates)
# ----------------------------------------------------------------------
import pytest


@pytest.fixture(scope="module")
def summary():
    result = run_benchmark()
    write_summary(result)
    return result


def test_failover_counts_bit_identical(summary):
    """Killing a worker mid-level on a 2-replica pool must not change a
    single count on any index backend, and the unreplicated kill must
    fail fast with a clean SchedulerError."""
    assert summary["failures"] == []


def test_every_backend_survived_the_kill(summary):
    assert [row["backend"] for row in summary["rows"]] == list(BACKENDS)
    for row in summary["rows"]:
        assert row["faulted_seconds"] > 0
        assert row["failfast_seconds"] is not None


def main() -> int:
    result = run_benchmark()
    path = write_summary(result)
    for row in result["rows"]:
        print(
            f"{row['backend']}: clean={row['clean_seconds']:.4f}s "
            f"faulted={row['faulted_seconds']:.4f}s "
            f"(x{row['failover_overhead']:.2f}) "
            f"failfast={row['failfast_seconds']}s"
        )
    status = "OK" if not result["failures"] else "FAIL"
    print(
        f"cores={result['cores']} fault='{result['fault']}' "
        f"{status} -> {path}"
    )
    for failure in result["failures"]:
        print(f"  {failure}")
    return 0 if not result["failures"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
