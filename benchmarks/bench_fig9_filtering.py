"""Fig. 9 / Exp-3 — pruning power of candidate generation + validation.

Per dataset, the totals over the workload of: candidates produced by
Algorithm 4, candidates surviving the vertex-count check (Obs. V.5,
"Filtered"), and true embeddings.  The paper's observations: the
candidate sets are almost free of false positives on label-rich
datasets (MA, SA), and ≥ 97% of vertex-count-filtered results are true
embeddings overall.
"""

from __future__ import annotations

import pytest

from repro import HGMatch, MatchCounters
from repro.bench import SETTING_NAMES, format_table, workload
from repro.datasets import SINGLE_THREAD_DATASETS, load_dataset, load_store
from repro.errors import TimeoutExceeded

from conftest import write_report

QUERIES = 3
TIMEOUT = 2.0


@pytest.fixture(scope="module")
def fig9_rows():
    rows = []
    for dataset in SINGLE_THREAD_DATASETS:
        engine = HGMatch(load_dataset(dataset), store=load_store(dataset))
        counters = MatchCounters()
        for setting in SETTING_NAMES:
            for query in workload(dataset, setting, QUERIES):
                try:
                    engine.count(query, counters=counters, time_budget=TIMEOUT)
                except TimeoutExceeded:
                    continue
        rows.append(
            {
                "dataset": dataset,
                "candidates": counters.candidates,
                "filtered": counters.filtered,
                "embeddings": counters.embeddings,
                "final_candidates": counters.final_candidates,
                "final_filtered": counters.final_filtered,
                "final_precision": round(counters.final_step_precision(), 4),
            }
        )
    report = format_table(
        rows, title="Fig. 9 — candidates vs filtered vs embeddings"
    )
    write_report("fig9_filtering", report)
    print("\n" + report)
    return rows


def test_fig9_funnel_is_monotone(fig9_rows):
    """Candidates ≥ filtered ≥ embeddings, at both granularities."""
    for row in fig9_rows:
        assert row["candidates"] >= row["filtered"] >= row["embeddings"]
        assert row["final_candidates"] >= row["final_filtered"] >= row["embeddings"]


def test_fig9_filtered_mostly_true_positives(fig9_rows):
    """The paper: 97% of the vertex-count-filtered (final-step) results
    are true embeddings.  Require a high aggregate precision."""
    total_filtered = sum(row["final_filtered"] for row in fig9_rows)
    total_embeddings = sum(row["embeddings"] for row in fig9_rows)
    if total_filtered:
        assert total_embeddings / total_filtered >= 0.90


def test_fig9_label_rich_datasets_have_few_false_candidates(fig9_rows):
    """MA and SA (huge alphabets): final-step candidate sets are almost
    free of false positives, the paper's 'almost no false positive
    candidates' observation."""
    for dataset in ("MA", "SA"):
        row = next(r for r in fig9_rows if r["dataset"] == dataset)
        if row["final_candidates"]:
            assert row["embeddings"] / row["final_candidates"] >= 0.8


def test_bench_candidate_generation(benchmark, fig9_rows):
    """Time raw candidate generation on a partial embedding."""
    from repro.core.candidates import generate_candidates, vertex_step_map

    data = load_dataset("HB")
    store = load_store("HB")
    engine = HGMatch(data, store=store)
    query = workload("HB", "q3", 1)[0]
    plan = engine.plan(query)
    roots = engine.expand(plan, ())
    partial = roots[0]
    step_plan = plan.steps[1]
    partition = store.partition(step_plan.signature)

    def generate():
        vmap = vertex_step_map(data, partial)
        return generate_candidates(data, partition, step_plan, partial, vmap)

    benchmark(generate)
