"""Benchmark: incremental index maintenance vs full rebuild.

The dynamic-graph gate.  A synthetic data graph large enough that
rebuilding its partitioned store is real work takes a stream of small
mutation batches — the *touched-container* workload: each batch lands
on a handful of (vertex, chunk) containers, which is exactly the case
incremental maintenance exists for.  After every batch the store is
also rebuilt from scratch, and both paths are cross-checked
structurally (same live edge ids, same posting-entry totals).

Gates:

* **exactness** — the incrementally maintained store must agree with
  the rebuild after every batch, on every index backend;
* **speedup** — total incremental maintenance time must be at least
  ``MIN_SPEEDUP``× faster than the total of the from-scratch rebuilds,
  per backend (the localisation claim: only touched containers
  re-choose their representation, everything else is untouched).

Results land in ``BENCH_mutation.json`` at the repo root.  Run
standalone (``python benchmarks/bench_mutation.py``) or via pytest;
the pytest entry points are the gates.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import List

from repro.hypergraph import DynamicHypergraph, PartitionedStore
from repro.hypergraph.generators import generate_hypergraph
from repro.testing import random_mutation_schedule

BACKENDS = ("merge", "bitset", "adaptive")
NUM_VERTICES = 1200
NUM_EDGES = 9000
NUM_LABELS = 4
NUM_BATCHES = 6
MIN_SPEEDUP = 3.0
SEED = 0xD1FF

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_mutation.json",
)


def _workload():
    """One data graph and a schedule of small, localised batches."""
    rng = random.Random(SEED)
    base = generate_hypergraph(
        num_vertices=NUM_VERTICES,
        num_edges=NUM_EDGES,
        num_labels=NUM_LABELS,
        mean_arity=3.0,
        max_arity=5,
        rng=rng,
    )
    schedule = random_mutation_schedule(
        rng, base, steps=NUM_BATCHES, max_inserts=4, max_deletes=4
    )
    return base, schedule


def _cross_check(backend, step, store, rebuilt, failures):
    """Structural agreement: live ids, row layouts, entry totals."""
    if store.index_size_entries() != rebuilt.index_size_entries():
        failures.append(
            f"{backend}: posting-entry totals diverged at batch {step} "
            f"({store.index_size_entries()} incremental vs "
            f"{rebuilt.index_size_entries()} rebuilt)"
        )
    mine = {
        signature: (partition.edge_ids, partition.row_ids)
        for signature, partition in store.partitions.items()
        if partition.row_ids
    }
    theirs = {
        signature: (partition.edge_ids, partition.row_ids)
        for signature, partition in rebuilt.partitions.items()
        if partition.row_ids
    }
    if mine != theirs:
        failures.append(
            f"{backend}: partition layouts diverged at batch {step}"
        )


def run_benchmark() -> dict:
    base, schedule = _workload()
    failures: List[str] = []
    rows = []
    for backend in BACKENDS:
        graph = DynamicHypergraph.from_hypergraph(base)
        started = time.perf_counter()
        store = PartitionedStore(graph, index_backend=backend)
        initial_build_s = time.perf_counter() - started

        incremental_s = 0.0
        rebuild_s = 0.0
        touched = 0
        for step, batch in enumerate(schedule):
            result = graph.apply(batch)
            touched += len(result.inserted) + len(result.deleted)

            started = time.perf_counter()
            store.apply_mutation_result(result)
            incremental_s += time.perf_counter() - started

            started = time.perf_counter()
            rebuilt = PartitionedStore(graph, index_backend=backend)
            rebuild_s += time.perf_counter() - started

            _cross_check(backend, step, store, rebuilt, failures)

        speedup = rebuild_s / max(incremental_s, 1e-12)
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"{backend}: incremental maintenance only {speedup:.1f}x "
                f"faster than rebuild (gate: {MIN_SPEEDUP}x)"
            )
        rows.append(
            {
                "backend": backend,
                "initial_build_seconds": round(initial_build_s, 6),
                "incremental_seconds": round(incremental_s, 6),
                "rebuild_seconds": round(rebuild_s, 6),
                "speedup": round(speedup, 2),
                "batches": len(schedule),
                "edges_touched": touched,
            }
        )

    return {
        "benchmark": "mutation",
        "workload": {
            "num_vertices": NUM_VERTICES,
            "num_edges": NUM_EDGES,
            "num_labels": NUM_LABELS,
            "batches": NUM_BATCHES,
            "seed": SEED,
        },
        "min_speedup": MIN_SPEEDUP,
        "failures": failures,
        "rows": rows,
    }


def write_summary(summary: dict) -> str:
    with open(RESULT_PATH, "w", encoding="utf-8") as stream:
        json.dump(summary, stream, indent=2)
        stream.write("\n")
    return RESULT_PATH


# ----------------------------------------------------------------------
# pytest entry points (the gates)
# ----------------------------------------------------------------------
import pytest


@pytest.fixture(scope="module")
def summary():
    result = run_benchmark()
    write_summary(result)
    return result


def test_incremental_maintenance_is_exact(summary):
    """The incrementally maintained store must match the rebuild after
    every batch, and clear the speedup gate, on every backend."""
    assert summary["failures"] == []


def test_every_backend_cleared_the_gate(summary):
    assert [row["backend"] for row in summary["rows"]] == list(BACKENDS)
    for row in summary["rows"]:
        assert row["speedup"] >= MIN_SPEEDUP
        assert row["edges_touched"] > 0


def main() -> int:
    result = run_benchmark()
    path = write_summary(result)
    for row in result["rows"]:
        print(
            f"{row['backend']}: build={row['initial_build_seconds']:.4f}s "
            f"incremental={row['incremental_seconds'] * 1e3:.2f}ms "
            f"rebuild={row['rebuild_seconds'] * 1e3:.2f}ms "
            f"(x{row['speedup']:.0f}, {row['edges_touched']} edges "
            f"across {row['batches']} batches)"
        )
    status = "OK" if not result["failures"] else "FAIL"
    print(f"gate>={result['min_speedup']}x {status} -> {path}")
    for failure in result["failures"]:
        print(f"  {failure}")
    return 0 if not result["failures"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
