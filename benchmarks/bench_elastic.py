"""Benchmark: elastic pool reconfiguration under live jobs.

The acceptance gate for the elastic cluster runtime.  A Fig. 8
workload slice runs against pools whose membership changes mid-
lifetime, and every reconfiguration must be invisible in the counts:

* **grow parity** — a pool grown from K=1 to K=2 via ``admit`` (and
  then drained back down to the admitted spares) must produce counts
  bit-identical to the static barrier run on all three index backends;
* **readmit parity** — a pool that *lost* a replica (killed process),
  served degraded, and folded a respawned worker back in with
  ``admit`` must also match exactly;
* **supervised restart** — a supervised worker killed out from under
  the pool is restarted by :class:`WorkerSupervisor` within the retry
  budget, and the restarted pool serves bit-identical counts;
* **heartbeat failover** — a worker severed-but-connected (SIGSTOP:
  the TCP connection stays up, heartbeats stop) is evicted by the
  registry and the coordinator fails the job over to the live replica
  well before its I/O timeout — the job never wedges.

Reconfiguration wall-clock (admit, drain, restart, eviction-to-
completion) is *recorded* for trend-watching, not gated — on shared CI
hosts those costs are noise-dominated.

Results land in ``BENCH_elastic.json`` at the repo root.  Run
standalone (``python benchmarks/bench_elastic.py``) or via pytest; the
pytest entry points are the gates.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from typing import List

from repro.bench import (
    FIG8_DATASETS,
    fig8_queries,
    make_engine,
    usable_cores,
)
from repro.datasets import load_dataset
from repro.parallel import (
    NetShardExecutor,
    ShardWorker,
    WorkerRegistry,
    WorkerSupervisor,
    spawn_local_cluster,
)
from repro.parallel.tasks import RetryPolicy

BACKENDS = ("merge", "bitset", "adaptive")
NUM_SHARDS = 2
NUM_QUERIES = 3
IO_TIMEOUT = 60.0
HEARTBEAT = 0.1
MISS_BUDGET = 3
#: Eviction-driven failover must beat the I/O deadline by a wide
#: margin — the whole point of heartbeats is not waiting it out.
FAILOVER_BUDGET = IO_TIMEOUT / 2
#: Supervisor restart must land within the (jittered) retry schedule.
RESTART_RETRY = RetryPolicy(attempts=3, base_delay=0.1, max_delay=0.5)
RESTART_BUDGET_S = 20.0

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_elastic.json",
)


def _workload():
    """The first ``NUM_QUERIES`` Fig. 8 queries of the first dataset."""
    dataset = FIG8_DATASETS[0]
    queries = [
        query for name, query in fig8_queries() if name == dataset
    ][:NUM_QUERIES]
    return dataset, queries


def _run_all(executor, engine, queries) -> List[int]:
    return [executor.run(engine, query).embeddings for query in queries]


def _spare_worker(data, shard_id, backend):
    """Boot one in-thread replica-1 worker (the newcomer to admit)."""
    worker = ShardWorker(
        data, shard_id, NUM_SHARDS, index_backend=backend,
        replica_id=1, num_replicas=2,
    )
    address = worker.bind()
    thread = threading.Thread(
        target=worker.serve_forever, kwargs={"max_sessions": 1},
        daemon=True,
    )
    thread.start()
    return worker, address


def _bench_grow(engine, backend, queries, expected, failures):
    """K=1 pool -> run -> admit spares -> K=2 parity -> drain the
    original replicas -> spares-only parity."""
    cluster = spawn_local_cluster(
        engine.data, NUM_SHARDS, index_backend=backend
    )
    spares = []
    row = {}
    try:
        executor = NetShardExecutor(
            addresses=list(cluster.addresses), index_backend=backend,
            io_timeout=IO_TIMEOUT,
        )
        try:
            started = time.perf_counter()
            static_counts = _run_all(executor, engine, queries)
            row["static_seconds"] = time.perf_counter() - started
            if static_counts != expected:
                failures.append(
                    f"{backend}: static K=1 pool returned "
                    f"{static_counts}, sequential {expected}"
                )
            started = time.perf_counter()
            for shard_id in range(NUM_SHARDS):
                worker, address = _spare_worker(
                    engine.data, shard_id, backend
                )
                spares.append(worker)
                executor.admit(address)
            row["admit_seconds"] = time.perf_counter() - started
            if executor.num_replicas != 2:
                failures.append(
                    f"{backend}: admit did not grow the pool to K=2"
                )
            started = time.perf_counter()
            grown_counts = _run_all(executor, engine, queries)
            row["grown_seconds"] = time.perf_counter() - started
            if grown_counts != expected:
                failures.append(
                    f"{backend}: grown K=2 pool returned "
                    f"{grown_counts}, sequential {expected}"
                )
            # The admitted spares must be real members: drop the
            # original replicas and let the spares carry everything.
            started = time.perf_counter()
            for shard_id in range(NUM_SHARDS):
                executor.drain(shard_id, replica_id=0)
            row["drain_seconds"] = time.perf_counter() - started
            drained_counts = _run_all(executor, engine, queries)
            if drained_counts != expected:
                failures.append(
                    f"{backend}: spares-only pool returned "
                    f"{drained_counts}, sequential {expected}"
                )
        finally:
            executor.close()
    finally:
        for worker in spares:
            worker.close()
        cluster.close()
    return row


def _bench_readmit(engine, backend, queries, expected, failures):
    """K=2 pool -> kill a replica -> degraded parity -> respawn and
    ``admit`` it back -> restored parity."""
    cluster = spawn_local_cluster(
        engine.data, NUM_SHARDS, index_backend=backend, num_replicas=2
    )
    row = {}
    try:
        executor = NetShardExecutor(
            addresses=list(cluster.addresses), num_replicas=2,
            index_backend=backend, io_timeout=IO_TIMEOUT,
        )
        try:
            if _run_all(executor, engine, queries) != expected:
                failures.append(
                    f"{backend}: replicated pool failed parity before "
                    f"the kill"
                )
            cluster.kill_member(0, 0)
            executor.drain(0, replica_id=0)
            degraded_counts = _run_all(executor, engine, queries)
            if degraded_counts != expected:
                failures.append(
                    f"{backend}: degraded pool returned "
                    f"{degraded_counts}, sequential {expected}"
                )
            started = time.perf_counter()
            address = cluster.respawn(0, 0)
            executor.admit(address)
            row["readmit_seconds"] = time.perf_counter() - started
            readmitted_counts = _run_all(executor, engine, queries)
            if readmitted_counts != expected:
                failures.append(
                    f"{backend}: readmitted pool returned "
                    f"{readmitted_counts}, sequential {expected}"
                )
        finally:
            executor.close()
    finally:
        cluster.close()
    return row


def _bench_supervised_restart(engine, queries, expected, failures):
    """Kill a supervised worker; the supervisor must bring it back
    within the retry budget and the pool must keep exact counts."""
    backend = "bitset"
    row = {"backend": backend}
    supervisor = WorkerSupervisor(
        engine.data, NUM_SHARDS, index_backend=backend,
        retry=RESTART_RETRY,
    )
    with supervisor:
        supervisor.cluster.kill_member(0)
        started = time.perf_counter()
        deadline = started + RESTART_BUDGET_S
        restarts = 0
        while restarts == 0 and time.monotonic() < deadline:
            restarts = supervisor.poll()
            time.sleep(0.02)
        row["restart_seconds"] = time.perf_counter() - started
        if restarts == 0:
            failures.append(
                f"supervisor did not restart the killed worker within "
                f"{RESTART_BUDGET_S}s"
            )
            return row
        executor = NetShardExecutor(
            addresses=supervisor.addresses, index_backend=backend,
            io_timeout=IO_TIMEOUT,
        )
        try:
            restarted_counts = _run_all(executor, engine, queries)
        finally:
            executor.close()
    if restarted_counts != expected:
        failures.append(
            f"restarted supervised pool returned {restarted_counts}, "
            f"sequential {expected}"
        )
    return row


def _bench_heartbeat_failover(engine, queries, expected, failures):
    """SIGSTOP a replica (connection up, heartbeats stop): the
    registry evicts it and the job fails over long before the I/O
    timeout."""
    backend = "bitset"
    row = {"backend": backend}
    with WorkerRegistry(
        heartbeat_interval=HEARTBEAT, miss_budget=MISS_BUDGET
    ) as registry:
        cluster = spawn_local_cluster(
            engine.data, 1, index_backend=backend, num_replicas=2,
            announce=registry.address, heartbeat_interval=HEARTBEAT,
        )
        stopped_pid = None
        try:
            executor = NetShardExecutor.from_registry(
                registry, 1, num_replicas=2, index_backend=backend,
                io_timeout=IO_TIMEOUT, wait_timeout=30.0,
            )
            try:
                if executor.run(engine, queries[0]).embeddings != expected[0]:
                    failures.append(
                        "registry-composed pool failed parity before "
                        "the sever"
                    )
                # Freeze replica 0: its TCP connection stays ESTABLISHED
                # but every thread (heartbeats included) stops.  Only
                # the registry's eviction can reveal it.
                stopped_pid = cluster.processes[0].pid
                os.kill(stopped_pid, signal.SIGSTOP)
                started = time.perf_counter()
                severed_counts = _run_all(executor, engine, queries)
                row["failover_seconds"] = time.perf_counter() - started
                if severed_counts != expected:
                    failures.append(
                        f"post-sever pool returned {severed_counts}, "
                        f"sequential {expected}"
                    )
                if row["failover_seconds"] > FAILOVER_BUDGET:
                    failures.append(
                        f"eviction failover took "
                        f"{row['failover_seconds']:.1f}s (budget "
                        f"{FAILOVER_BUDGET:.1f}s) — the job wedged on "
                        f"the severed worker"
                    )
                if executor._members[0].get(0) is not None:
                    failures.append(
                        "severed replica is still in the member grid "
                        "after eviction"
                    )
            finally:
                executor.close()
        finally:
            if stopped_pid is not None:
                try:
                    os.kill(stopped_pid, signal.SIGCONT)
                except OSError:
                    pass
            cluster.close()
    return row


def run_benchmark() -> dict:
    """Reconfigure pools under live jobs and verify exact counts;
    returns the JSON summary."""
    dataset, queries = _workload()
    failures: List[str] = []
    rows = []
    for backend in BACKENDS:
        engine = make_engine(load_dataset(dataset), index_backend=backend)
        try:
            expected = [engine.count(query) for query in queries]
            row = {"backend": backend, "counts": expected}
            row.update(
                _bench_grow(engine, backend, queries, expected, failures)
            )
            row.update(
                _bench_readmit(
                    engine, backend, queries, expected, failures
                )
            )
            rows.append(
                {
                    key: (
                        round(value, 6)
                        if isinstance(value, float)
                        else value
                    )
                    for key, value in row.items()
                }
            )
        finally:
            engine.close()

    engine = make_engine(load_dataset(dataset), index_backend="bitset")
    try:
        expected = [engine.count(query) for query in queries]
        supervisor_row = _bench_supervised_restart(
            engine, queries, expected, failures
        )
        failover_row = _bench_heartbeat_failover(
            engine, queries, expected, failures
        )
    finally:
        engine.close()

    return {
        "benchmark": "elastic",
        "workload": {
            "dataset": dataset,
            "queries": len(queries),
        },
        "num_shards": NUM_SHARDS,
        "io_timeout_seconds": IO_TIMEOUT,
        "heartbeat_interval_seconds": HEARTBEAT,
        "miss_budget": MISS_BUDGET,
        "cores": usable_cores(),
        "failures": failures,
        "rows": rows,
        "supervised_restart": {
            key: round(value, 6) if isinstance(value, float) else value
            for key, value in supervisor_row.items()
        },
        "heartbeat_failover": {
            key: round(value, 6) if isinstance(value, float) else value
            for key, value in failover_row.items()
        },
    }


def write_summary(summary: dict) -> str:
    with open(RESULT_PATH, "w", encoding="utf-8") as stream:
        json.dump(summary, stream, indent=2)
        stream.write("\n")
    return RESULT_PATH


# ----------------------------------------------------------------------
# pytest entry points (the gates)
# ----------------------------------------------------------------------
import pytest


@pytest.fixture(scope="module")
def summary():
    result = run_benchmark()
    write_summary(result)
    return result


def test_elastic_reconfiguration_keeps_counts_bit_identical(summary):
    """Grown, drained, readmitted, restarted and eviction-failed-over
    pools must all match the sequential counts exactly, and neither
    restart nor failover may blow its time budget."""
    assert summary["failures"] == []


def test_every_backend_ran_every_reconfiguration(summary):
    assert [row["backend"] for row in summary["rows"]] == list(BACKENDS)
    for row in summary["rows"]:
        assert row["grown_seconds"] > 0
        assert row["readmit_seconds"] > 0
    assert summary["supervised_restart"]["restart_seconds"] > 0
    assert summary["heartbeat_failover"]["failover_seconds"] > 0


def main() -> int:
    result = run_benchmark()
    path = write_summary(result)
    for row in result["rows"]:
        print(
            f"{row['backend']}: static={row['static_seconds']:.4f}s "
            f"grown={row['grown_seconds']:.4f}s "
            f"admit={row['admit_seconds']:.4f}s "
            f"readmit={row['readmit_seconds']:.4f}s"
        )
    print(
        f"supervised restart: "
        f"{result['supervised_restart']['restart_seconds']:.4f}s; "
        f"heartbeat failover: "
        f"{result['heartbeat_failover']['failover_seconds']:.4f}s"
    )
    status = "OK" if not result["failures"] else "FAIL"
    print(f"cores={result['cores']} {status} -> {path}")
    for failure in result["failures"]:
        print(f"  {failure}")
    return 0 if not result["failures"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
