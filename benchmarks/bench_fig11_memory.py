"""Fig. 11 / Exp-5 — task-based scheduling vs BFS memory usage.

The paper runs the 20 q3 queries on AR with 20 threads and compares
memory: BFS grows with the embedding count (materialising every level)
while the task scheduler stays flat (~4.8 GB) thanks to the Theorem VI.1
bound.  Memory here is measured in retained partial embeddings / entry
units (DESIGN.md substitution 2); the shape to reproduce is BFS'
growth with result count vs the scheduler's bounded peak.
"""

from __future__ import annotations

import pytest

from repro import HGMatch
from repro.bench import format_table, workload
from repro.datasets import load_dataset, load_store
from repro.errors import TimeoutExceeded
from repro.parallel import measure_memory, theoretical_memory_bound

from conftest import write_report

QUERIES = 8


@pytest.fixture(scope="module")
def fig11_rows():
    engine = HGMatch(load_dataset("AR"), store=load_store("AR"))
    rows = []
    for index, query in enumerate(workload("AR", "q3", QUERIES)):
        try:
            task = measure_memory(engine, query, "task")
            bfs = measure_memory(engine, query, "bfs")
        except TimeoutExceeded:  # pragma: no cover - workload is sized to fit
            continue
        rows.append(
            {
                "query": index + 1,
                "embeddings": task.embeddings,
                "task_peak_units": task.peak_entry_units,
                "bfs_peak_units": bfs.peak_entry_units,
                "bound_units": theoretical_memory_bound(query, engine.data),
            }
        )
    rows.sort(key=lambda row: row["embeddings"])
    report = format_table(
        rows, title="Fig. 11 — peak retained memory (entry units)"
    )
    write_report("fig11_memory", report)
    print("\n" + report)
    return rows


def test_fig11_bfs_grows_with_result_count(fig11_rows):
    """BFS peak memory tracks the embedding count; for the heaviest
    queries it must dwarf the scheduler's."""
    heaviest = fig11_rows[-1]
    if heaviest["embeddings"] > 100:
        assert heaviest["bfs_peak_units"] > 3 * heaviest["task_peak_units"]


def test_fig11_task_scheduler_stays_bounded(fig11_rows):
    """Every task-scheduler peak respects the Theorem VI.1 bound."""
    for row in fig11_rows:
        assert row["task_peak_units"] <= row["bound_units"]


def test_fig11_task_memory_stable_across_queries(fig11_rows):
    """The paper stresses the scheduler's memory is stable (~4.8 GB for
    all 20 queries); the scaled analogue: the task peak varies far less
    than the BFS peak does."""
    task_peaks = [row["task_peak_units"] for row in fig11_rows]
    bfs_peaks = [row["bfs_peak_units"] for row in fig11_rows]
    if min(task_peaks) > 0 and min(bfs_peaks) > 0:
        task_spread = max(task_peaks) / min(task_peaks)
        bfs_spread = max(bfs_peaks) / min(bfs_peaks)
        assert task_spread <= bfs_spread


def test_bench_task_scheduler_memory_run(benchmark, fig11_rows):
    engine = HGMatch(load_dataset("AR"), store=load_store("AR"))
    query = workload("AR", "q3", 1)[0]
    measurement = benchmark(lambda: measure_memory(engine, query, "task"))
    assert measurement.embeddings >= 1
