"""Benchmark: crash-consistent recovery and stale-worker catch-up.

The durability gate.  Two acceptance scenarios, both gated on
bit-identical state across all three index backends:

* **kill -9 recovery** — a ``serve-match`` daemon journalling to disk
  is killed with SIGKILL mid-schedule (after ``k`` of ``n`` committed
  mutation batches, and once *during* a commit).  The journal alone
  must reconstruct the graph of the longest committed prefix — same
  fingerprint as a local mirror that applied the same batches — and a
  restarted daemon on the same directory must serve query counts
  bit-identical to that mirror, then accept the rest of the schedule
  and land on the full-schedule counts;
* **catch-up rejoin** — a replicated socket pool loses a worker, the
  graph mutates while the slot is empty, and the respawned worker
  (rebuilt from spawn-time data, so announcing a stale version) must
  rejoin via the CATCHUP handshake (§2.10) with counts bit-identical
  to a rebuild on the mutated graph.

Recovery and catch-up wall-clock are *recorded* for trend-watching,
not gated — daemon restart cost is dominated by interpreter startup.

Results land in ``BENCH_durability.json`` at the repo root.  Run
standalone (``python benchmarks/bench_durability.py``) or via pytest;
the pytest entry points are the gates.
"""

from __future__ import annotations

import json
import os
import random
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import List

from repro import HGMatch
from repro.bench import FIG8_DATASETS, fig8_queries, usable_cores
from repro.datasets import load_dataset
from repro.hypergraph import DynamicHypergraph
from repro.hypergraph.journal import MutationJournal
from repro.parallel import spawn_local_cluster
from repro.service import MatchClient, graph_fingerprint
from repro.testing import random_mutation_schedule

BACKENDS = ("merge", "bitset", "adaptive")
NUM_SHARDS = 2
NUM_BATCHES = 6
#: Acked batches before the SIGKILL — the longest committed prefix.
KILL_AFTER = 3
SNAPSHOT_INTERVAL = 2
IO_TIMEOUT = 60.0
STARTUP_BUDGET_S = 60.0
SEED = 0xC4A5

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_durability.json",
)

_ADDRESS_RE = re.compile(r"on (127\.0\.0\.1):(\d+)")
_RECOVERED_RE = re.compile(r"recovered graph at version (\d+)")


def _wire_form(graph):
    """Round-trip through the native text format: the daemon parses its
    graph from an ``.hg`` file and the client sends queries as native
    text, so the mirror must speak the same (stringified) labels."""
    import io

    from repro.hypergraph.io import dump_native, parse_native

    buffer = io.StringIO()
    dump_native(graph, buffer)
    return parse_native(io.StringIO(buffer.getvalue()))


def _workload():
    """The first Fig. 8 dataset, its first query, and one mutation
    schedule per backend (deterministic, but independent streams)."""
    dataset = FIG8_DATASETS[0]
    query = _wire_form(next(
        query for name, query in fig8_queries() if name == dataset
    ))
    base = _wire_form(load_dataset(dataset))
    schedules = {
        backend: random_mutation_schedule(
            random.Random(SEED + index), base, steps=NUM_BATCHES
        )
        for index, backend in enumerate(BACKENDS)
    }
    return dataset, base, query, schedules


def _mirror_counts(base, schedule, query, backend):
    """Fingerprint + count after every prefix of ``schedule`` — the
    ground truth every recovery must land on exactly."""
    mirror = DynamicHypergraph.from_hypergraph(base)
    states = {}

    def snap(version):
        probe = HGMatch(mirror.to_hypergraph(), index_backend=backend)
        try:
            states[version] = (
                graph_fingerprint(mirror), probe.count(query)
            )
        finally:
            probe.close()

    snap(0)
    for batch in schedule:
        result = mirror.apply(batch)
        snap(result.version)
    return states


class _Daemon:
    """One ``serve-match`` subprocess with a parsed listen address."""

    def __init__(self, dataset, backend, journal_dir):
        self.log = tempfile.NamedTemporaryFile(
            mode="w+", suffix=".log", delete=False
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            path for path in ("src", env.get("PYTHONPATH")) if path
        )
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve-match", dataset,
                "--shards", str(NUM_SHARDS),
                "--index-backend", backend,
                "--journal-dir", journal_dir,
                "--journal-fsync", "always",
                "--snapshot-interval", str(SNAPSHOT_INTERVAL),
                "--duration", "300",
            ],
            stdout=self.log, stderr=subprocess.STDOUT, env=env,
        )
        self.address = None
        deadline = time.monotonic() + STARTUP_BUDGET_S
        while time.monotonic() < deadline:
            match = _ADDRESS_RE.search(self.read_log())
            if match is not None:
                self.address = (match.group(1), int(match.group(2)))
                break
            if self.process.poll() is not None:
                break
            time.sleep(0.05)
        if self.address is None:
            raise RuntimeError(
                f"serve-match never came up:\n{self.read_log()}"
            )

    def read_log(self) -> str:
        with open(self.log.name, "r", encoding="utf-8") as stream:
            return stream.read()

    def kill9(self) -> None:
        self.process.kill()  # SIGKILL: no drain, no journal close
        self.process.wait(timeout=30)

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=30)
        os.unlink(self.log.name)


def _bench_kill9(dataset, backend, schedule, query, states, failures,
                 mid_commit=False):
    """Commit ``KILL_AFTER`` batches, SIGKILL the daemon, verify the
    journal holds the longest committed prefix, restart, verify counts
    and finish the schedule."""
    row = {"backend": backend, "mid_commit": mid_commit}
    with tempfile.TemporaryDirectory(prefix="bench-durability-") as root:
        journal_dir = os.path.join(root, "wal")
        daemon = _Daemon(dataset, backend, journal_dir)
        try:
            client = MatchClient(*daemon.address, timeout=IO_TIMEOUT)
            before = client.query(query)
            if before.embeddings != states[0][1]:
                failures.append(
                    f"{backend}: pre-mutation count "
                    f"{before.embeddings} != mirror {states[0][1]}"
                )
            for batch in schedule[:KILL_AFTER]:
                client.mutate(batch)
            if mid_commit:
                # SIGKILL *while* batch KILL_AFTER+1 commits: the
                # recovered version may be either side of it, but the
                # state must match the mirror at whichever committed.
                commit = threading.Thread(
                    target=lambda: _swallow(
                        client.mutate, schedule[KILL_AFTER]
                    ),
                    daemon=True,
                )
                commit.start()
                time.sleep(0.005)
                daemon.kill9()
                commit.join(timeout=30)
            else:
                daemon.kill9()
        finally:
            daemon.stop()

        started = time.perf_counter()
        recovered = MutationJournal(journal_dir).recover()
        row["journal_recover_seconds"] = time.perf_counter() - started
        acceptable = (
            {KILL_AFTER, KILL_AFTER + 1} if mid_commit else {KILL_AFTER}
        )
        if recovered is None or recovered.version not in acceptable:
            got = None if recovered is None else recovered.version
            failures.append(
                f"{backend}: journal recovered version {got}, "
                f"expected one of {sorted(acceptable)}"
            )
            return row
        committed = recovered.version
        row["committed_version"] = committed
        if graph_fingerprint(recovered.graph) != states[committed][0]:
            failures.append(
                f"{backend}: recovered fingerprint diverged from the "
                f"mirror at version {committed}"
            )

        started = time.perf_counter()
        daemon = _Daemon(dataset, backend, journal_dir)
        row["restart_seconds"] = time.perf_counter() - started
        try:
            match = _RECOVERED_RE.search(daemon.read_log())
            if match is None or int(match.group(1)) != committed:
                failures.append(
                    f"{backend}: restarted daemon did not report "
                    f"recovery at version {committed}: "
                    f"{daemon.read_log()!r}"
                )
            client = MatchClient(*daemon.address, timeout=IO_TIMEOUT)
            after = client.query(query)
            if after.embeddings != states[committed][1]:
                failures.append(
                    f"{backend}: post-restart count {after.embeddings} "
                    f"!= mirror {states[committed][1]} at version "
                    f"{committed}"
                )
            # Finish the schedule against the recovered daemon: it is
            # a full-fidelity continuation, not a read-only archive.
            for batch in schedule[committed:]:
                outcome = client.mutate(batch)
            if outcome.version != NUM_BATCHES:
                failures.append(
                    f"{backend}: schedule finished at version "
                    f"{outcome.version}, expected {NUM_BATCHES}"
                )
            final = client.query(query)
            if final.embeddings != states[NUM_BATCHES][1]:
                failures.append(
                    f"{backend}: final count {final.embeddings} != "
                    f"mirror {states[NUM_BATCHES][1]}"
                )
        finally:
            daemon.stop()
    return row


def _swallow(call, *args):
    try:
        call(*args)
    except Exception:
        pass  # the SIGKILL races the ack; either outcome is valid


def _bench_catchup(base, backend, query, failures):
    """Kill a replica, mutate, respawn it stale: the CATCHUP handshake
    must level it and counts must match a rebuild exactly."""
    row = {"backend": backend}
    engine = HGMatch(base, index_backend=backend)
    cluster = spawn_local_cluster(
        base, NUM_SHARDS, index_backend=backend, num_replicas=2
    )
    try:
        executor = engine.net_executor(
            hosts=list(cluster.addresses), replicas=2
        )
        baseline = engine.count(query)
        if executor.run(engine, query).embeddings != baseline:
            failures.append(
                f"{backend}: replicated pool failed parity before the "
                f"kill"
            )
        cluster.kill_member(0, 0)
        executor.drain(0, replica_id=0)
        rng = random.Random(SEED ^ 0x7E57)
        result = None
        for batch in random_mutation_schedule(rng, base, steps=3):
            result = engine.apply_mutations(batch)
        probe = HGMatch(
            engine.data.to_hypergraph(), index_backend=backend
        )
        try:
            oracle = probe.count(query)
        finally:
            probe.close()
        degraded = executor.run(engine, query).embeddings
        if degraded != oracle:
            failures.append(
                f"{backend}: degraded pool returned {degraded}, "
                f"rebuild says {oracle}"
            )
        started = time.perf_counter()
        address = cluster.respawn(0, 0)
        descriptor = executor.admit(address)
        row["catchup_seconds"] = time.perf_counter() - started
        if descriptor.graph_version != result.version:
            failures.append(
                f"{backend}: readmitted worker is at version "
                f"{descriptor.graph_version}, engine at "
                f"{result.version} — catch-up fell short"
            )
        rejoined = executor.run(engine, query).embeddings
        if rejoined != oracle:
            failures.append(
                f"{backend}: rejoined pool returned {rejoined}, "
                f"rebuild says {oracle}"
            )
    finally:
        engine.close()
        cluster.close()
    return row


def run_benchmark() -> dict:
    """Kill, recover and catch up on every backend; returns the JSON
    summary."""
    dataset, base, query, schedules = _workload()
    failures: List[str] = []
    kill_rows = []
    catchup_rows = []
    # The daemon parses its graph from this dump — the same text form
    # the mirror round-tripped through, so labels agree end to end.
    from repro.hypergraph.io import dump_native

    source = tempfile.NamedTemporaryFile(
        mode="w", suffix=".hg", delete=False
    )
    with source:
        dump_native(base, source)
    try:
        for index, backend in enumerate(BACKENDS):
            schedule = schedules[backend]
            states = _mirror_counts(base, schedule, query, backend)
            kill_rows.append(
                _round(_bench_kill9(
                    source.name, backend, schedule, query, states,
                    failures,
                    # One backend exercises SIGKILL *during* a commit.
                    mid_commit=(index == len(BACKENDS) - 1),
                ))
            )
            catchup_rows.append(
                _round(_bench_catchup(base, backend, query, failures))
            )
    finally:
        os.unlink(source.name)
    return {
        "benchmark": "durability",
        "workload": {
            "dataset": dataset,
            "batches": NUM_BATCHES,
            "kill_after": KILL_AFTER,
            "snapshot_interval": SNAPSHOT_INTERVAL,
        },
        "num_shards": NUM_SHARDS,
        "cores": usable_cores(),
        "failures": failures,
        "kill9": kill_rows,
        "catchup": catchup_rows,
    }


def _round(row: dict) -> dict:
    return {
        key: round(value, 6) if isinstance(value, float) else value
        for key, value in row.items()
    }


def write_summary(summary: dict) -> str:
    with open(RESULT_PATH, "w", encoding="utf-8") as stream:
        json.dump(summary, stream, indent=2)
        stream.write("\n")
    return RESULT_PATH


# ----------------------------------------------------------------------
# pytest entry points (the gates)
# ----------------------------------------------------------------------
import pytest


@pytest.fixture(scope="module")
def summary():
    result = run_benchmark()
    write_summary(result)
    return result


def test_kill9_recovery_is_bit_identical_on_every_backend(summary):
    """SIGKILL mid-schedule, recover from the journal alone: the
    fingerprint and query counts must equal the longest committed
    prefix exactly, and the restarted daemon must finish the schedule."""
    assert summary["failures"] == []
    assert [row["backend"] for row in summary["kill9"]] == list(BACKENDS)
    for row in summary["kill9"]:
        assert "committed_version" in row


def test_catchup_rejoin_is_bit_identical_on_every_backend(summary):
    assert [row["backend"] for row in summary["catchup"]] == list(BACKENDS)
    for row in summary["catchup"]:
        assert row["catchup_seconds"] > 0


def main() -> int:
    result = run_benchmark()
    path = write_summary(result)
    for row in result["kill9"]:
        print(
            f"{row['backend']}: committed=v{row.get('committed_version')} "
            f"journal_recover={row.get('journal_recover_seconds', 0):.4f}s "
            f"restart={row.get('restart_seconds', 0):.4f}s"
            f"{' (mid-commit kill)' if row['mid_commit'] else ''}"
        )
    for row in result["catchup"]:
        print(f"{row['backend']}: catchup={row['catchup_seconds']:.4f}s")
    status = "OK" if not result["failures"] else "FAIL"
    print(f"cores={result['cores']} {status} -> {path}")
    for failure in result["failures"]:
        print(f"  {failure}")
    return 0 if not result["failures"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
