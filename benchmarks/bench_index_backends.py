"""Micro-benchmark: merge vs bitset vs adaptive index backends.

Replays every ``generate_candidates`` call of the Fig. 8 workload
(reproduction-scale query classes q2/q3 on the high-arity datasets where
set algebra dominates) against all three index backends and times the
set algebra in isolation: the call trace — (step plan, partial
embedding, vertex_step_map) triples — is collected once, then each
backend replays the identical trace.  Two timings are taken per mask
backend:

* ``<backend>_seconds`` — the decoded-tuple boundary
  (``generate_candidates``), comparable with the numbers PR 1 recorded;
* ``<backend>_masknative_seconds`` — the mask-native pipeline
  (``generate_candidate_set``, iterated bit-by-bit as the engine's
  expand loop does, no per-step decode).

Results land in ``BENCH_index_backends.json`` at the repo root so later
PRs have a perf trajectory to regress against.  The ``work_model``
labels record which ``work_units`` cost model each backend charges —
raw work units are never comparable across models (see
``repro.core.counters``).

Run standalone (``python benchmarks/bench_index_backends.py``) or via
pytest (``pytest benchmarks/bench_index_backends.py``); the pytest
entry points are the regression gates.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Tuple

from repro import HGMatch
from repro.bench import make_engine, work_model_label, workload
from repro.bench import (
    FIG8_DATASETS as DATASETS,
    FIG8_QUERIES_PER_SETTING as QUERIES_PER_SETTING,
    FIG8_SETTINGS as SETTINGS,
)
from repro.core.candidates import (
    generate_candidate_set,
    generate_candidates,
    vertex_step_map,
)
from repro.datasets import load_dataset

# The Fig. 8 trace (shared with bench_sharding/bench_net via
# repro.bench.fig8) is restricted to datasets and query classes whose
# partitions are large enough that posting-list algebra — not per-call
# overhead — dominates: the regime the backends differ in.  q4 is
# excluded: its enumeration is tens of thousands of tiny probes whose
# fixed per-call cost swamps the algebra on both backends.  The trace
# totals ~100ms of merge-side work so ratios are stable across runs.
REPEATS = 5

#: merge first: it is the baseline every regression gate divides by.
BACKENDS = ("merge", "bitset", "adaptive")
MASK_BACKENDS = ("bitset", "adaptive")

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_index_backends.json",
)

Trace = List[Tuple[object, Tuple[int, ...], Dict[int, set]]]


def collect_trace(engine: HGMatch, query) -> Trace:
    """Every (step plan, partial, vmap) probe of the enumeration tree."""
    data = engine.data
    plan = engine.plan(query)
    calls: Trace = []
    stack: List[Tuple[int, ...]] = [()]
    while stack:
        matched = stack.pop()
        step_plan = plan.steps[len(matched)]
        calls.append((step_plan, matched, vertex_step_map(data, matched)))
        for extended in engine.expand(plan, matched):
            if len(extended) < plan.num_steps:
                stack.append(extended)
    return calls


def replay(engine: HGMatch, trace: Trace) -> Tuple[float, List[Tuple[int, ...]]]:
    """Best-of-``REPEATS`` wall time to run the whole trace through the
    decoded-tuple boundary; returns the candidate tuples of the last run
    for cross-backend verification.  No anchor memo: this measures the
    raw per-call algebra (the engine-level memo is a separate effect)."""
    data = engine.data
    partitions = {
        id(step_plan): engine.store.partition(step_plan.signature)
        for step_plan, _, _ in trace
    }
    best = float("inf")
    outputs: List[Tuple[int, ...]] = []
    for _ in range(REPEATS):
        outputs = []
        started = time.perf_counter()
        for step_plan, matched, vmap in trace:
            outputs.append(
                generate_candidates(
                    data, partitions[id(step_plan)], step_plan, matched, vmap
                )
            )
        best = min(best, time.perf_counter() - started)
    return best, outputs


def replay_masknative(engine: HGMatch, trace: Trace) -> float:
    """Best-of-``REPEATS`` wall time for the mask-native pipeline: the
    per-step cost of Algorithm 4 up to a ready :class:`CandidateSet`,
    with no per-step decode — the representation stays a bitmask /
    chunk map / tuple.

    This is the number comparable with ``<backend>_seconds`` (and with
    PR 1's recorded ``bitset_seconds_total``), which measured the same
    algebra *plus* the decode into an edge-id tuple.  The decode is not
    hidden downstream: in the engine the candidate set is consumed by
    ``HGMatch.expand``'s inline bit scan during validation, which costs
    the same as iterating the old decoded tuple did (measured equal on
    this trace), so the decode's list/tuple materialisation is work
    genuinely removed from the per-step path, not work displaced."""
    data = engine.data
    partitions = {
        id(step_plan): engine.store.partition(step_plan.signature)
        for step_plan, _, _ in trace
    }
    best = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        for step_plan, matched, vmap in trace:
            generate_candidate_set(
                data, partitions[id(step_plan)], step_plan, matched, vmap
            )
        best = min(best, time.perf_counter() - started)
    return best


def run_benchmark() -> dict:
    """Time all backends over the workload; returns the JSON summary."""
    rows = []
    total = {backend: 0.0 for backend in BACKENDS}
    masknative_total = {backend: 0.0 for backend in MASK_BACKENDS}
    for dataset in DATASETS:
        data = load_dataset(dataset)
        engines = {
            backend: make_engine(data, index_backend=backend)
            for backend in BACKENDS
        }
        dataset_times = {backend: 0.0 for backend in BACKENDS}
        dataset_masknative = {backend: 0.0 for backend in MASK_BACKENDS}
        calls = 0
        for setting in SETTINGS:
            for query in workload(dataset, setting, QUERIES_PER_SETTING):
                trace = collect_trace(engines["merge"], query)
                calls += len(trace)
                reference = None
                for backend in BACKENDS:
                    seconds, outputs = replay(engines[backend], trace)
                    if reference is None:
                        reference = outputs
                    elif outputs != reference:
                        raise AssertionError(
                            f"{backend} diverged from merge on "
                            f"{dataset}/{setting}"
                        )
                    dataset_times[backend] += seconds
                for backend in MASK_BACKENDS:
                    dataset_masknative[backend] += replay_masknative(
                        engines[backend], trace
                    )
        for backend in BACKENDS:
            total[backend] += dataset_times[backend]
        for backend in MASK_BACKENDS:
            masknative_total[backend] += dataset_masknative[backend]
        row = {
            "dataset": dataset,
            "generate_candidates_calls": calls,
        }
        for backend in BACKENDS:
            row[f"{backend}_seconds"] = round(dataset_times[backend], 6)
        for backend in MASK_BACKENDS:
            row[f"{backend}_speedup"] = round(
                dataset_times["merge"] / max(dataset_times[backend], 1e-12), 3
            )
            row[f"{backend}_masknative_seconds"] = round(
                dataset_masknative[backend], 6
            )
        row["adaptive_vs_bitset"] = round(
            dataset_times["adaptive"] / max(dataset_times["bitset"], 1e-12), 3
        )
        rows.append(row)
    summary = {
        "benchmark": "index_backends",
        "workload": {
            "datasets": list(DATASETS),
            "settings": list(SETTINGS),
            "queries_per_setting": QUERIES_PER_SETTING,
            "repeats": REPEATS,
        },
        "backends": list(BACKENDS),
        "work_models": {
            backend: work_model_label(backend) for backend in BACKENDS
        },
        "rows": rows,
    }
    for backend in BACKENDS:
        summary[f"{backend}_seconds_total"] = round(total[backend], 6)
    for backend in MASK_BACKENDS:
        summary[f"{backend}_speedup_total"] = round(
            total["merge"] / max(total[backend], 1e-12), 3
        )
        summary[f"{backend}_masknative_seconds_total"] = round(
            masknative_total[backend], 6
        )
    # Back-compat alias: PR 1's summary called the bitset ratio
    # "speedup_total"; keep it so older tooling reads the same key.
    summary["speedup_total"] = summary["bitset_speedup_total"]
    return summary


def write_summary(summary: dict) -> str:
    with open(RESULT_PATH, "w", encoding="utf-8") as stream:
        json.dump(summary, stream, indent=2)
        stream.write("\n")
    return RESULT_PATH


# ----------------------------------------------------------------------
# pytest entry points (the regression gates)
# ----------------------------------------------------------------------
import pytest


@pytest.fixture(scope="module")
def summary():
    result = run_benchmark()
    write_summary(result)
    return result


def test_backends_agree_on_every_call(summary):
    """replay() asserts tuple-level equality; reaching here means the
    whole workload produced byte-identical candidate sets across all
    three backends."""
    assert summary["rows"]


@pytest.mark.parametrize("backend", MASK_BACKENDS)
def test_mask_backends_speedup_at_least_2x(summary, backend):
    """The 2x regression gate, covering every non-merge backend."""
    assert summary[f"{backend}_speedup_total"] >= 2.0, summary


def test_adaptive_within_1p3x_of_bitset(summary):
    """Chunked containers may not cost more than 30% over the dense
    bitmasks on the HB/SB trace (the memory trade-off must stay cheap)."""
    for row in summary["rows"]:
        assert row["adaptive_vs_bitset"] <= 1.3, row


@pytest.mark.parametrize("backend", MASK_BACKENDS)
def test_masknative_beats_decoded_boundary(summary, backend):
    """The mask-native pipeline must beat the decoded-tuple boundary it
    replaced (PR 1 recorded bitset_seconds_total at the decoded
    boundary; the regenerated JSON shows the masknative total beating
    it on the same workload)."""
    assert (
        summary[f"{backend}_masknative_seconds_total"]
        < summary[f"{backend}_seconds_total"]
    ), summary


def main() -> int:
    result = run_benchmark()
    path = write_summary(result)
    for row in result["rows"]:
        print(
            f"{row['dataset']}: "
            f"merge={row['merge_seconds']:.4f}s "
            f"bitset={row['bitset_seconds']:.4f}s "
            f"adaptive={row['adaptive_seconds']:.4f}s "
            f"(x{row['bitset_speedup']:.2f}/x{row['adaptive_speedup']:.2f}, "
            f"masknative bitset={row['bitset_masknative_seconds']:.4f}s "
            f"adaptive={row['adaptive_masknative_seconds']:.4f}s, "
            f"{row['generate_candidates_calls']} calls)"
        )
    print(
        f"TOTAL: merge={result['merge_seconds_total']:.4f}s "
        f"bitset={result['bitset_seconds_total']:.4f}s "
        f"adaptive={result['adaptive_seconds_total']:.4f}s "
        f"speedups: bitset x{result['bitset_speedup_total']:.2f} "
        f"adaptive x{result['adaptive_speedup_total']:.2f} -> {path}"
    )
    # Mirror every pytest gate: CI's bench-smoke job runs this main(), so
    # anything only the pytest entry points checked could never fail CI.
    ok = all(
        result[f"{backend}_speedup_total"] >= 2.0
        and result[f"{backend}_masknative_seconds_total"]
        < result[f"{backend}_seconds_total"]
        for backend in MASK_BACKENDS
    ) and all(row["adaptive_vs_bitset"] <= 1.3 for row in result["rows"])
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
