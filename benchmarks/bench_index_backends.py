"""Micro-benchmark: merge vs bitset index backends on Algorithm 4.

Replays every ``generate_candidates`` call of the Fig. 8 workload
(reproduction-scale query classes q2/q3 on the high-arity datasets where
set algebra dominates) against both index backends and times the set
algebra in isolation: the call trace — (step plan, partial embedding,
vertex_step_map) triples — is collected once, then each backend replays
the identical trace.  Results land in ``BENCH_index_backends.json`` at
the repo root so later PRs have a perf trajectory to regress against.

Run standalone (``python benchmarks/bench_index_backends.py``) or via
pytest (``pytest benchmarks/bench_index_backends.py``).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Tuple

from repro import HGMatch
from repro.bench import make_engine, workload
from repro.core.candidates import generate_candidates, vertex_step_map
from repro.datasets import load_dataset

#: Fig. 8 protocol at reproduction scale, restricted to the datasets
#: and query classes whose partitions are large enough that posting-list
#: algebra (not per-call overhead) dominates — the regime the backends
#: differ in.  q4 is excluded: its enumeration is tens of thousands of
#: tiny probes whose fixed per-call cost swamps the algebra on both
#: backends.  The trace totals ~100ms of merge-side work so the ratio
#: is stable across runs and machines.
DATASETS = ("HB", "SB")
SETTINGS = ("q2", "q3", "q6")
QUERIES_PER_SETTING = 3
REPEATS = 5

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_index_backends.json",
)

Trace = List[Tuple[object, Tuple[int, ...], Dict[int, set]]]


def collect_trace(engine: HGMatch, query) -> Trace:
    """Every (step plan, partial, vmap) probe of the enumeration tree."""
    data = engine.data
    plan = engine.plan(query)
    calls: Trace = []
    stack: List[Tuple[int, ...]] = [()]
    while stack:
        matched = stack.pop()
        step_plan = plan.steps[len(matched)]
        calls.append((step_plan, matched, vertex_step_map(data, matched)))
        for extended in engine.expand(plan, matched):
            if len(extended) < plan.num_steps:
                stack.append(extended)
    return calls


def replay(engine: HGMatch, trace: Trace) -> Tuple[float, List[Tuple[int, ...]]]:
    """Best-of-``REPEATS`` wall time to run the whole trace; returns the
    candidate tuples of the last run for cross-backend verification."""
    data = engine.data
    partitions = {
        id(step_plan): engine.store.partition(step_plan.signature)
        for step_plan, _, _ in trace
    }
    best = float("inf")
    outputs: List[Tuple[int, ...]] = []
    for _ in range(REPEATS):
        outputs = []
        started = time.perf_counter()
        for step_plan, matched, vmap in trace:
            outputs.append(
                generate_candidates(
                    data, partitions[id(step_plan)], step_plan, matched, vmap
                )
            )
        best = min(best, time.perf_counter() - started)
    return best, outputs


def run_benchmark() -> dict:
    """Time both backends over the workload; returns the JSON summary."""
    rows = []
    total = {"merge": 0.0, "bitset": 0.0}
    for dataset in DATASETS:
        data = load_dataset(dataset)
        engines = {
            backend: make_engine(data, index_backend=backend)
            for backend in ("merge", "bitset")
        }
        dataset_times = {"merge": 0.0, "bitset": 0.0}
        calls = 0
        for setting in SETTINGS:
            for query in workload(dataset, setting, QUERIES_PER_SETTING):
                trace = collect_trace(engines["merge"], query)
                calls += len(trace)
                merge_time, merge_out = replay(engines["merge"], trace)
                bitset_time, bitset_out = replay(engines["bitset"], trace)
                if merge_out != bitset_out:
                    raise AssertionError(
                        f"backend divergence on {dataset}/{setting}"
                    )
                dataset_times["merge"] += merge_time
                dataset_times["bitset"] += bitset_time
        total["merge"] += dataset_times["merge"]
        total["bitset"] += dataset_times["bitset"]
        rows.append(
            {
                "dataset": dataset,
                "generate_candidates_calls": calls,
                "merge_seconds": round(dataset_times["merge"], 6),
                "bitset_seconds": round(dataset_times["bitset"], 6),
                "speedup": round(
                    dataset_times["merge"] / max(dataset_times["bitset"], 1e-12),
                    3,
                ),
            }
        )
    summary = {
        "benchmark": "index_backends",
        "workload": {
            "datasets": list(DATASETS),
            "settings": list(SETTINGS),
            "queries_per_setting": QUERIES_PER_SETTING,
            "repeats": REPEATS,
        },
        "rows": rows,
        "merge_seconds_total": round(total["merge"], 6),
        "bitset_seconds_total": round(total["bitset"], 6),
        "speedup_total": round(total["merge"] / max(total["bitset"], 1e-12), 3),
    }
    return summary


def write_summary(summary: dict) -> str:
    with open(RESULT_PATH, "w", encoding="utf-8") as stream:
        json.dump(summary, stream, indent=2)
        stream.write("\n")
    return RESULT_PATH


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
import pytest


@pytest.fixture(scope="module")
def summary():
    result = run_benchmark()
    write_summary(result)
    return result


def test_backends_agree_on_every_call(summary):
    """replay() asserts tuple-level equality; reaching here means the
    whole workload produced byte-identical candidate sets."""
    assert summary["rows"]


def test_bitset_speedup_at_least_2x(summary):
    assert summary["speedup_total"] >= 2.0, summary


def main() -> int:
    result = run_benchmark()
    path = write_summary(result)
    for row in result["rows"]:
        print(
            f"{row['dataset']}: merge={row['merge_seconds']:.4f}s "
            f"bitset={row['bitset_seconds']:.4f}s "
            f"speedup={row['speedup']:.2f}x "
            f"({row['generate_candidates_calls']} calls)"
        )
    print(
        f"TOTAL: merge={result['merge_seconds_total']:.4f}s "
        f"bitset={result['bitset_seconds_total']:.4f}s "
        f"speedup={result['speedup_total']:.2f}x -> {path}"
    )
    return 0 if result["speedup_total"] >= 2.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
