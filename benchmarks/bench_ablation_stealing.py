"""Ablation — work-stealing granularity (steal-half vs steal-one vs none).

DESIGN.md lists the steal-half-from-tail policy as a design choice
(Section VI-C follows Cilk-style stealing).  This ablation compares, on
the simulated executor: stealing half the victim's queue, stealing a
single task, and no stealing at all — by makespan, steal count and load
imbalance on a heavy AR query.
"""

from __future__ import annotations

import pytest

from repro import HGMatch
from repro.bench import format_table, workload
from repro.datasets import load_dataset, load_store
from repro.parallel import SimulatedExecutor

from conftest import write_report

WORKERS = 12


@pytest.fixture(scope="module")
def stealing_rows():
    engine = HGMatch(load_dataset("AR"), store=load_store("AR"))
    queries = workload("AR", "q3", 6)
    query = max(queries, key=lambda q: engine.count(q, time_budget=5.0))

    variants = {
        "steal-half": SimulatedExecutor(WORKERS, stealing=True, steal_mode="half"),
        "steal-one": SimulatedExecutor(WORKERS, stealing=True, steal_mode="one"),
        "no-steal": SimulatedExecutor(WORKERS, stealing=False),
    }
    rows = []
    results = {}
    for name, executor in variants.items():
        result = executor.run(engine, query)
        results[name] = result
        rows.append(
            {
                "variant": name,
                "makespan": round(result.makespan, 1),
                "imbalance": round(result.load_imbalance(), 3),
                "steals": result.total_steals,
                "embeddings": result.embeddings,
            }
        )
    report = format_table(rows, title="Ablation — stealing granularity")
    write_report("ablation_stealing", report)
    print("\n" + report)
    return results


def test_all_variants_agree_on_counts(stealing_rows):
    counts = {result.embeddings for result in stealing_rows.values()}
    assert len(counts) == 1


def test_stealing_beats_no_stealing(stealing_rows):
    assert (
        stealing_rows["steal-half"].makespan
        <= stealing_rows["no-steal"].makespan * 1.02
    )


def test_steal_half_needs_fewer_steals_than_steal_one(stealing_rows):
    """Taking half the queue amortises the steal overhead: fewer steal
    events for the same balance."""
    half = stealing_rows["steal-half"]
    one = stealing_rows["steal-one"]
    if one.total_steals > 20:
        assert half.total_steals <= one.total_steals


def test_bench_steal_half_execution(benchmark, stealing_rows):
    engine = HGMatch(load_dataset("AR"), store=load_store("AR"))
    query = workload("AR", "q3", 1)[0]
    executor = SimulatedExecutor(WORKERS, stealing=True, steal_mode="half")
    result = benchmark(lambda: executor.run(engine, query))
    assert result.embeddings >= 1
