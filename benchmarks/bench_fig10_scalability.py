"""Fig. 10 / Exp-4 — scalability with the number of threads.

The paper runs two heavy q3 queries on AR with 1–60 threads on a
2×20-core machine: near-linear speedup up to 20 threads, then a knee
from NUMA/hyper-threading.  Pure-Python threads cannot show wall-clock
speedup (GIL), so this bench reproduces the curve on the discrete-event
simulated executor over the real task tree, with the cost model's
physical-core knee at 20 (DESIGN.md substitution 2).  The threaded
executor is additionally validated for count-correctness here.
"""

from __future__ import annotations

import pytest

from repro import HGMatch
from repro.bench import format_table, workload
from repro.datasets import load_dataset, load_store
from repro.parallel import CostModel, SimulatedExecutor, ThreadedExecutor, simulate_speedups

from conftest import write_report

THREADS = (1, 2, 4, 8, 16, 20, 32, 40, 60)


def _heavy_queries(count=2):
    """The ``count`` highest-embedding q3 workload queries on AR."""
    engine = HGMatch(load_dataset("AR"), store=load_store("AR"))
    queries = workload("AR", "q3", 6)
    scored = sorted(
        ((engine.count(q, time_budget=5.0), q) for q in queries),
        key=lambda pair: -pair[0],
    )
    return engine, [query for _, query in scored[:count]]


@pytest.fixture(scope="module")
def fig10_rows():
    engine, queries = _heavy_queries()
    model = CostModel(physical_cores=20)
    all_rows = []
    for index, query in enumerate(queries, start=1):
        rows = simulate_speedups(engine, query, THREADS, cost_model=model)
        for row in rows:
            row["query"] = f"q3^{index}"
        all_rows.extend(rows)
    report = format_table(
        all_rows, title="Fig. 10 — simulated speedup vs thread count"
    )
    write_report("fig10_scalability", report)
    print("\n" + report)
    return all_rows


def test_fig10_near_linear_up_to_physical_cores(fig10_rows):
    """Speedup at 16–20 threads is a large fraction of the thread count
    (the paper: ~20× at 20 threads)."""
    for row in fig10_rows:
        if row["threads"] == 16 and row["embeddings"] > 2000:
            assert row["speedup"] >= 8.0


def test_fig10_knee_beyond_physical_cores(fig10_rows):
    """Per-thread efficiency drops past 20 threads (NUMA/SMT knee)."""
    by_query = {}
    for row in fig10_rows:
        by_query.setdefault(row["query"], {})[row["threads"]] = row["speedup"]
    for speeds in by_query.values():
        efficiency_20 = speeds[20] / 20
        efficiency_60 = speeds[60] / 60
        assert efficiency_60 < efficiency_20


def test_fig10_monotone_overall(fig10_rows):
    """Makespan is (near-)monotone through the physical+NUMA tiers; the
    SMT tier beyond 40 threads may dip, but never below half the peak
    speedup (the paper's curve flattens rather than collapses)."""
    by_query = {}
    for row in fig10_rows:
        by_query.setdefault(row["query"], []).append(
            (row["threads"], row["makespan"], row["speedup"])
        )
    for series in by_query.values():
        series.sort()
        capped = [entry for entry in series if entry[0] <= 40]
        for (_, earlier, _), (_, later, _) in zip(capped, capped[1:]):
            assert later <= earlier * 1.20
        peak = max(speed for _, _, speed in series)
        final_speed = series[-1][2]
        assert final_speed >= 0.5 * peak


def test_threaded_executor_matches_simulated_counts():
    engine, queries = _heavy_queries(count=1)
    query = queries[0]
    threaded = ThreadedExecutor(num_workers=4).run(engine, query)
    simulated = SimulatedExecutor(4).run(engine, query)
    assert threaded.embeddings == simulated.embeddings


def test_bench_simulated_execution(benchmark, fig10_rows):
    engine, queries = _heavy_queries(count=1)
    executor = SimulatedExecutor(8)
    result = benchmark(lambda: executor.run(engine, queries[0]))
    assert result.embeddings > 0
