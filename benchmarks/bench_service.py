"""Benchmark: the always-on match service multiplexing a Fig. 8 slice.

The service gate.  One :class:`~repro.service.service.MatchService`
(2-shard multiplexed pool) takes the first Fig. 8 queries of the first
dataset *concurrently* on every index backend.  Gates:

* **multiplexed parity** — every concurrently-submitted query must
  return counts bit-identical to the sequential engine (always
  enforced, all three backends);
* **cache bypass** — resubmitting a finished query must be served from
  the LRU result cache without a single additional frame crossing the
  wire (the pool's dispatch counter is the proof), and must return the
  same count;
* **throughput** — concurrent wall-clock vs the sequential solo run is
  *recorded* (not gated: single-core hosts serialise the shard
  workers), as is the cache-hit latency, so CI trends stay visible.

Results land in ``BENCH_service.json`` at the repo root.  Run
standalone (``python benchmarks/bench_service.py``) or via pytest; the
pytest entry points are the gates.
"""

from __future__ import annotations

import json
import os
import time
from typing import List

from repro.bench import (
    FIG8_DATASETS,
    fig8_queries,
    make_engine,
    usable_cores,
)
from repro.datasets import load_dataset
from repro.service import MatchService

BACKENDS = ("merge", "bitset", "adaptive")
NUM_SHARDS = 2
NUM_QUERIES = 3
QUEUE_DEPTH = 16

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_service.json",
)


def _workload():
    """The first ``NUM_QUERIES`` Fig. 8 queries of the first dataset."""
    dataset = FIG8_DATASETS[0]
    queries = [
        query for name, query in fig8_queries() if name == dataset
    ][:NUM_QUERIES]
    return dataset, queries


def run_benchmark() -> dict:
    """Multiplex the workload through one service per backend and
    verify exact counts; returns the JSON summary."""
    dataset, queries = _workload()
    failures: List[str] = []
    rows = []
    for backend in BACKENDS:
        engine = make_engine(load_dataset(dataset), index_backend=backend)
        try:
            started = time.perf_counter()
            expected = [engine.count(query) for query in queries]
            solo_s = time.perf_counter() - started

            service = MatchService(
                engine,
                shards=NUM_SHARDS,
                max_concurrent=NUM_QUERIES,
                queue_depth=QUEUE_DEPTH,
            )
            try:
                # All queries in flight together over the one pool.
                started = time.perf_counter()
                tickets = [service.submit(query) for query in queries]
                concurrent = [
                    ticket.result(timeout=600) for ticket in tickets
                ]
                concurrent_s = time.perf_counter() - started
                counts = [result.embeddings for result in concurrent]
                if counts != expected:
                    failures.append(
                        f"{backend}: multiplexed service returned "
                        f"{counts}, sequential {expected}"
                    )
                if any(ticket.cached for ticket in tickets):
                    failures.append(
                        f"{backend}: first submission claimed a cache hit"
                    )

                # Resubmit the first query: a cache hit, and not one
                # frame of pool traffic.
                frames_before = service.pool.dispatched_frames
                started = time.perf_counter()
                hit = service.submit(queries[0])
                hit_result = hit.result(timeout=600)
                hit_s = time.perf_counter() - started
                if not hit.cached:
                    failures.append(
                        f"{backend}: resubmitted query missed the cache"
                    )
                if service.pool.dispatched_frames != frames_before:
                    failures.append(
                        f"{backend}: cache hit dispatched "
                        f"{service.pool.dispatched_frames - frames_before}"
                        f" frames to the pool"
                    )
                if hit_result.embeddings != expected[0]:
                    failures.append(
                        f"{backend}: cached count "
                        f"{hit_result.embeddings} != {expected[0]}"
                    )
            finally:
                service.close()
        finally:
            engine.close()

        rows.append(
            {
                "backend": backend,
                "solo_seconds": round(solo_s, 6),
                "concurrent_seconds": round(concurrent_s, 6),
                "throughput_qps": round(
                    len(queries) / max(concurrent_s, 1e-12), 3
                ),
                "speedup_vs_solo": round(
                    solo_s / max(concurrent_s, 1e-12), 3
                ),
                "cache_hit_seconds": round(hit_s, 6),
                "counts": counts,
            }
        )

    return {
        "benchmark": "service",
        "workload": {
            "dataset": dataset,
            "queries": len(queries),
        },
        "num_shards": NUM_SHARDS,
        "queue_depth": QUEUE_DEPTH,
        "cores": usable_cores(),
        "failures": failures,
        "rows": rows,
    }


def write_summary(summary: dict) -> str:
    with open(RESULT_PATH, "w", encoding="utf-8") as stream:
        json.dump(summary, stream, indent=2)
        stream.write("\n")
    return RESULT_PATH


# ----------------------------------------------------------------------
# pytest entry points (the gates)
# ----------------------------------------------------------------------
import pytest


@pytest.fixture(scope="module")
def summary():
    result = run_benchmark()
    write_summary(result)
    return result


def test_multiplexed_counts_bit_identical(summary):
    """Concurrent multiplexed queries must not change a single count on
    any index backend, and cache hits must bypass the pool entirely."""
    assert summary["failures"] == []


def test_every_backend_served_the_workload(summary):
    assert [row["backend"] for row in summary["rows"]] == list(BACKENDS)
    for row in summary["rows"]:
        assert row["concurrent_seconds"] > 0
        assert row["cache_hit_seconds"] >= 0


def main() -> int:
    result = run_benchmark()
    path = write_summary(result)
    for row in result["rows"]:
        print(
            f"{row['backend']}: solo={row['solo_seconds']:.4f}s "
            f"concurrent={row['concurrent_seconds']:.4f}s "
            f"({row['throughput_qps']:.2f} q/s, "
            f"x{row['speedup_vs_solo']:.2f} vs solo) "
            f"cache_hit={row['cache_hit_seconds'] * 1e3:.2f}ms"
        )
    status = "OK" if not result["failures"] else "FAIL"
    print(f"cores={result['cores']} {status} -> {path}")
    for failure in result["failures"]:
        print(f"  {failure}")
    return 0 if not result["failures"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
