"""Fig. 12 / Exp-6 — dynamic work stealing vs static assignment.

The paper runs one heavy q3 query on AR with 20 workers and plots the
per-worker running time, sorted ascending: without stealing
("HGMatch-NOSTL") the last workers straggle; with stealing all workers
finish near the average.  Reproduced on the simulated executor's
virtual-time busy times (DESIGN.md substitution 2).
"""

from __future__ import annotations

import pytest

from repro import HGMatch
from repro.bench import format_series, format_table, workload
from repro.datasets import load_dataset, load_store
from repro.parallel import SimulatedExecutor

from conftest import write_report

WORKERS = 20


@pytest.fixture(scope="module")
def fig12_results():
    engine = HGMatch(load_dataset("AR"), store=load_store("AR"))
    queries = workload("AR", "q3", 6)
    query = max(queries, key=lambda q: engine.count(q, time_budget=5.0))
    with_steal = SimulatedExecutor(WORKERS, stealing=True).run(engine, query)
    without = SimulatedExecutor(WORKERS, stealing=False).run(engine, query)

    lines = [
        format_series(
            "HGMatch       ", sorted(with_steal.busy_times()), unit="work units"
        ),
        format_series(
            "HGMatch-NOSTL ", sorted(without.busy_times()), unit="work units"
        ),
    ]
    summary = format_table(
        [
            {
                "variant": "HGMatch",
                "makespan": round(with_steal.makespan, 1),
                "imbalance": round(with_steal.load_imbalance(), 3),
                "steals": with_steal.total_steals,
            },
            {
                "variant": "HGMatch-NOSTL",
                "makespan": round(without.makespan, 1),
                "imbalance": round(without.load_imbalance(), 3),
                "steals": without.total_steals,
            },
        ],
        title="Fig. 12 — per-worker load with/without stealing",
    )
    report = summary + "\n" + "\n".join(lines)
    write_report("fig12_load_balancing", report)
    print("\n" + report)
    return with_steal, without


def test_fig12_counts_agree(fig12_results):
    with_steal, without = fig12_results
    assert with_steal.embeddings == without.embeddings


def test_fig12_stealing_improves_balance(fig12_results):
    """Work stealing yields near-perfect balance; static assignment shows
    visible skew (the paper's dashed-average plot)."""
    with_steal, without = fig12_results
    assert with_steal.load_imbalance() <= without.load_imbalance()
    assert with_steal.load_imbalance() <= 1.5


def test_fig12_stealing_reduces_makespan(fig12_results):
    with_steal, without = fig12_results
    assert with_steal.makespan <= without.makespan * 1.02


def test_fig12_steals_actually_happen(fig12_results):
    with_steal, without = fig12_results
    assert with_steal.total_steals > 0
    assert without.total_steals == 0


def test_bench_simulated_20_workers(benchmark, fig12_results):
    engine = HGMatch(load_dataset("AR"), store=load_store("AR"))
    query = workload("AR", "q3", 1)[0]
    executor = SimulatedExecutor(WORKERS)
    result = benchmark(lambda: executor.run(engine, query))
    assert result.embeddings >= 1
