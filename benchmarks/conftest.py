"""Shared benchmark infrastructure.

Experiment rows are computed once per session (they are expensive —
baseline timeouts dominate) and shared between the Fig. 8 timing bench
and the Table IV completion bench.  Every bench module also writes its
formatted report to ``benchmarks/reports/<experiment>.txt`` so the
tables survive pytest's output capture; EXPERIMENTS.md links to them.
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro import HGMatch
from repro.baselines import BASELINE_NAMES, make_baseline
from repro.bench import (
    QueryRecord,
    run_baseline,
    run_hgmatch,
    workload,
)
from repro.datasets import SINGLE_THREAD_DATASETS, load_dataset, load_store

#: Reproduction-scale protocol: the paper uses 20 queries/setting and a
#: 1-hour timeout on a 40-core server; we use 2 queries/setting and a
#: 1.5 s timeout so the full grid stays within a CI-sized budget.
QUERIES_PER_SETTING = 2
BENCH_TIMEOUT = 1.5
REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def write_report(name: str, text: str) -> str:
    """Persist a report table; returns the path."""
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(text + "\n")
    return path


@pytest.fixture(scope="session")
def single_thread_records() -> List[QueryRecord]:
    """The full Exp-2 grid: every engine × dataset × setting × query.

    This is the shared substrate of Fig. 8 (average times) and Table IV
    (completion ratios).
    """
    records: List[QueryRecord] = []
    engines: Dict[str, HGMatch] = {}
    for dataset in SINGLE_THREAD_DATASETS:
        data = load_dataset(dataset)
        engines[dataset] = HGMatch(data, store=load_store(dataset))
        matchers = {name: make_baseline(name, data) for name in BASELINE_NAMES}
        for setting in ("q2", "q3", "q4", "q6"):
            queries = workload(dataset, setting, QUERIES_PER_SETTING)
            for index, query in enumerate(queries):
                records.append(
                    run_hgmatch(
                        engines[dataset], query, dataset, setting, index,
                        timeout=BENCH_TIMEOUT,
                    )
                )
                for name in BASELINE_NAMES:
                    records.append(
                        run_baseline(
                            matchers[name], query, dataset, setting, index,
                            timeout=BENCH_TIMEOUT,
                        )
                    )
    return records
