"""Fig. 8 / Exp-2 — single-thread comparison of HGMatch vs baselines.

Regenerates the paper's headline result: per dataset and query class,
the average elapsed time of HGMatch, CFL-H, DAF-H, CECI-H and
RapidMatch-H (timeouts charged at the limit).  The paper reports
HGMatch ahead by orders of magnitude on average, with the gap widest on
high-arity datasets (HC, MA, HB, SA); the *shape* to reproduce is
HGMatch ≤ every baseline on (almost) every cell and a large geometric-
mean speedup.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    SETTING_NAMES,
    average_time,
    format_table,
    geometric_mean,
    group_records,
)
from repro.datasets import SINGLE_THREAD_DATASETS

from conftest import BENCH_TIMEOUT, write_report

ENGINES = ("HGMatch", "CFL-H", "DAF-H", "CECI-H", "RapidMatch-H")


@pytest.fixture(scope="module")
def fig8_table(single_thread_records):
    grouped = group_records(single_thread_records)
    rows = []
    for dataset in SINGLE_THREAD_DATASETS:
        for setting in SETTING_NAMES:
            row = {"dataset": dataset, "setting": setting}
            for engine in ENGINES:
                records = grouped.get((engine, dataset, setting), [])
                row[engine] = round(average_time(records, BENCH_TIMEOUT), 5)
            rows.append(row)
    report = format_table(rows, title="Fig. 8 — average time per query (s)")
    write_report("fig8_single_thread", report)
    print("\n" + report)
    return rows


def _speedups(fig8_table, baseline: str):
    ratios = []
    for row in fig8_table:
        hg = row["HGMatch"]
        other = row[baseline]
        if hg > 0 and other > 0:
            ratios.append(other / hg)
    return ratios


def test_fig8_hgmatch_wins_nearly_everywhere(fig8_table):
    """HGMatch must be the fastest engine on the vast majority of cells
    (the paper: every cell)."""
    wins = 0
    cells = 0
    for row in fig8_table:
        others = [row[e] for e in ENGINES[1:]]
        cells += 1
        if row["HGMatch"] <= min(others) + 1e-4:
            wins += 1
    assert wins >= 0.85 * cells, f"HGMatch won only {wins}/{cells} cells"


@pytest.mark.parametrize("baseline", ENGINES[1:])
def test_fig8_large_mean_speedup(fig8_table, baseline):
    """Orders-of-magnitude average speedup (scaled: ≥ 10× geometric mean,
    far larger where baselines time out)."""
    ratios = _speedups(fig8_table, baseline)
    assert geometric_mean(ratios) >= 10.0, (
        f"{baseline}: geometric-mean speedup {geometric_mean(ratios):.1f}x"
    )


def test_fig8_gap_grows_with_arity(fig8_table, single_thread_records):
    """The paper's strongest gaps are on high-average-arity datasets.
    Compare the mean baseline/HGMatch ratio on the high-arity group
    (HC, MA, HB, SA) vs the low-arity contact networks (CH, CP)."""
    def mean_ratio(datasets):
        ratios = []
        for row in fig8_table:
            if row["dataset"] not in datasets:
                continue
            if row["HGMatch"] > 0:
                best_baseline = min(row[e] for e in ENGINES[1:])
                ratios.append(best_baseline / row["HGMatch"])
        return geometric_mean(ratios)

    high = mean_ratio({"HC", "MA", "HB", "SA"})
    low = mean_ratio({"CH", "CP"})
    assert high > low


def test_bench_hgmatch_single_query(benchmark, fig8_table):
    from repro import HGMatch
    from repro.bench import workload
    from repro.datasets import load_dataset, load_store

    engine = HGMatch(load_dataset("HB"), store=load_store("HB"))
    query = workload("HB", "q3", 1)[0]
    count = benchmark(lambda: engine.count(query))
    assert count >= 1
