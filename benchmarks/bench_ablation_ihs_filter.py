"""Ablation — the IHS candidate filter in the baselines (Section III-B).

The paper argues extending CFL/DAF/CECI with the IHS filter yields
stronger baselines than the original TurboISO-based proposal.  This
ablation runs the generic match-by-vertex framework with and without the
IHS filter: the filter must shrink candidate sets and (usually) search
trees, while leaving the result counts untouched.
"""

from __future__ import annotations

import pytest

from repro.baselines import VertexBacktrackingMatcher
from repro.bench import format_table, workload
from repro.datasets import load_dataset
from repro.errors import TimeoutExceeded

from conftest import write_report

DATASETS = ("CH", "CP", "WT", "TC")
TIMEOUT = 5.0


@pytest.fixture(scope="module")
def ihs_rows():
    rows = []
    for dataset in DATASETS:
        data = load_dataset(dataset)
        with_ihs = VertexBacktrackingMatcher(data, use_ihs=True)
        without = VertexBacktrackingMatcher(data, use_ihs=False)
        for index, query in enumerate(workload(dataset, "q3", 2)):
            try:
                ihs_result = with_ihs.run(query, time_budget=TIMEOUT)
                ldf_result = without.run(query, time_budget=TIMEOUT)
            except TimeoutExceeded:
                continue
            rows.append(
                {
                    "dataset": dataset,
                    "query": index,
                    "ihs_candidates": ihs_result.candidates_total,
                    "ldf_candidates": ldf_result.candidates_total,
                    "ihs_nodes": ihs_result.search_nodes,
                    "ldf_nodes": ldf_result.search_nodes,
                    "embeddings": ihs_result.vertex_embeddings,
                    "embeddings_match": (
                        ihs_result.vertex_embeddings == ldf_result.vertex_embeddings
                    ),
                }
            )
    report = format_table(rows, title="Ablation — IHS filter vs LDF only")
    write_report("ablation_ihs_filter", report)
    print("\n" + report)
    return rows


def test_ihs_preserves_results(ihs_rows):
    assert all(row["embeddings_match"] for row in ihs_rows)


def test_ihs_shrinks_candidate_sets(ihs_rows):
    for row in ihs_rows:
        assert row["ihs_candidates"] <= row["ldf_candidates"]
    assert sum(r["ihs_candidates"] for r in ihs_rows) < sum(
        r["ldf_candidates"] for r in ihs_rows
    )


def test_ihs_never_explodes_search(ihs_rows):
    """The filter can only remove candidates, so the search tree with IHS
    is never larger."""
    for row in ihs_rows:
        assert row["ihs_nodes"] <= row["ldf_nodes"]


def test_bench_ihs_candidate_filter(benchmark, ihs_rows):
    from repro.baselines.filters import ihs_candidates

    data = load_dataset("TC")
    query = workload("TC", "q3", 1)[0]
    candidates = benchmark(lambda: ihs_candidates(query, data))
    assert candidates
