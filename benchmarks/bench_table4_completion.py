"""Table IV — query completion ratio (single-thread, with timeout).

The paper: HGMatch completes 100% of all queries; CFL-H/DAF-H/CECI-H/
RapidMatch-H complete everything on the small datasets but fail
increasingly on the larger/denser ones (83–85% overall).  Reuses the
Exp-2 record grid.
"""

from __future__ import annotations

import pytest

from repro.bench import completion_ratio, format_table, group_records  # noqa: F401
from repro.datasets import SINGLE_THREAD_DATASETS

from conftest import write_report

ENGINES = ("HGMatch", "CFL-H", "DAF-H", "CECI-H", "RapidMatch-H")


@pytest.fixture(scope="module")
def table4_rows(single_thread_records):
    grouped = group_records(single_thread_records)
    rows = []
    for engine in ENGINES:
        row = {"algorithm": engine}
        all_records = []
        for dataset in SINGLE_THREAD_DATASETS:
            records = [
                record
                for (eng, ds, _), group in grouped.items()
                for record in group
                if eng == engine and ds == dataset
            ]
            all_records.extend(records)
            row[dataset] = f"{completion_ratio(records):.0%}"
        row["Total"] = f"{completion_ratio(all_records):.0%}"
        rows.append(row)
    report = format_table(rows, title="Table IV — query completion ratio")
    write_report("table4_completion", report)
    print("\n" + report)
    return rows


def test_table4_hgmatch_completes_everything(table4_rows):
    """The paper's key claim: HGMatch is the only algorithm finishing
    every query within the limit."""
    hgmatch = next(row for row in table4_rows if row["algorithm"] == "HGMatch")
    assert hgmatch["Total"] == "100%"


def test_table4_baselines_fail_somewhere(table4_rows):
    """At reproduction scale the baselines must show incomplete cells,
    mirroring the paper's 83–85% totals."""
    totals = [
        float(row["Total"].rstrip("%"))
        for row in table4_rows
        if row["algorithm"] != "HGMatch"
    ]
    assert any(total < 100.0 for total in totals)


def test_table4_small_datasets_complete(table4_rows):
    """All algorithms finish on the easy contact-network datasets (the
    paper's 100% region; our scaled HC analogue is disproportionately
    hard for match-by-vertex under the scaled timeout, see
    EXPERIMENTS.md)."""
    for row in table4_rows:
        assert row["CH"] == "100%"
        assert row["CP"] == "100%"


def test_bench_completion_aggregation(benchmark, single_thread_records, table4_rows):
    """Time the record aggregation itself (and force the Table IV report
    to be generated under --benchmark-only)."""
    grouped = benchmark(lambda: group_records(single_thread_records))
    assert grouped
