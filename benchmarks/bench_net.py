"""Benchmark: socket-sharded execution (the full network path).

Runs the Fig. 8 trace (the same HB/SB × q2/q3/q6 workload as
``bench_index_backends`` and ``bench_sharding``) through the socket
executor — local loopback clusters spawned by
:func:`repro.parallel.spawn_local_cluster`, i.e. real TCP connections,
framing and versioned candidate payloads — and gates the subsystem:

* **parity** — ``count``/``count_bfs`` with ``executor="sockets"`` must
  be bit-identical to the sequential engine, the threaded executor and
  the process executor for all three index backends, and the balanced
  shard placement must return the same counts as uniform over the
  whole trace (always enforced);
* **payload** — the candidate bytes crossing the sockets must be the
  backend's mask representation: on the identical trace the
  bitset/adaptive payload totals must stay at or below the merge
  backend's edge-id tuple payloads (always enforced; mirrors the
  ``BENCH_sharding.json`` ratio, one version byte per payload added on
  both sides of the comparison).

Wall-clock against threads/processes is *recorded* but not gated: the
socket transport pays framing + loopback TCP on top of the process
executor's IPC, which single-core hosts (like the dev container) have
no parallelism to amortise.  The JSON captures the ratios so multi-core
CI trends are visible.

Results land in ``BENCH_net.json`` at the repo root.  Run standalone
(``python benchmarks/bench_net.py``) or via pytest; the pytest entry
points are the gates.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro import HGMatch
from repro.bench import (
    FIG8_DATASETS as DATASETS,
    FIG8_QUERIES_PER_SETTING as QUERIES_PER_SETTING,
    FIG8_SETTINGS as SETTINGS,
    fig8_queries,
    make_engine,
    time_pass as _time_pass,
    usable_cores,
    work_model_label,
)
from repro.datasets import load_dataset
from repro.parallel import (
    NetShardExecutor,
    ProcessShardExecutor,
    ThreadedExecutor,
)

REPEATS = 2

BACKENDS = ("merge", "bitset", "adaptive")
MASK_BACKENDS = ("bitset", "adaptive")
NUM_SHARDS = 4

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_net.json",
)


def run_benchmark() -> dict:
    """Verify and time the socket executor; returns the JSON summary."""
    queries = fig8_queries()
    engines: Dict[str, Dict[str, HGMatch]] = {
        dataset: {
            backend: make_engine(load_dataset(dataset), index_backend=backend)
            for backend in BACKENDS
        }
        for dataset in DATASETS
    }
    reference = [
        engines[dataset][BACKENDS[0]].count(query)
        for dataset, query in queries
    ]

    rows = []
    parity_failures: List[str] = []
    for backend in BACKENDS:
        net_executors: Dict[str, NetShardExecutor] = {}
        net_balanced: Dict[str, NetShardExecutor] = {}
        process_executors: Dict[str, ProcessShardExecutor] = {}
        try:
            # Offline stage: spawn the socket clusters and process
            # pools, and warm them (first run builds each shard).
            for dataset in DATASETS:
                net = NetShardExecutor(
                    num_shards=NUM_SHARDS, index_backend=backend
                )
                net_executors[dataset] = net
                net.run(engines[dataset][backend], queries[0][1])
                net_b = NetShardExecutor(
                    num_shards=NUM_SHARDS,
                    index_backend=backend,
                    sharding="balanced",
                )
                net_balanced[dataset] = net_b
                net_b.run(engines[dataset][backend], queries[0][1])
                pool = ProcessShardExecutor(
                    NUM_SHARDS, index_backend=backend
                )
                process_executors[dataset] = pool
                pool.run(engines[dataset][backend], queries[0][1])

            # Parity: sockets == sequential == threads == processes,
            # via both the raw executor and the engine count_bfs API.
            threaded = ThreadedExecutor(num_workers=NUM_SHARDS)
            payload_bytes = [0] * NUM_SHARDS
            for (dataset, query), expected in zip(queries, reference):
                engine = engines[dataset][backend]
                if engine.count(query) != expected:
                    parity_failures.append(f"{backend}: sequential drifted")
                threads_count = threaded.run(engine, query).embeddings
                if threads_count != expected:
                    parity_failures.append(
                        f"{backend}: threads returned {threads_count}, "
                        f"sequential {expected}"
                    )
                processes_count = process_executors[dataset].run(
                    engine, query
                ).embeddings
                if processes_count != expected:
                    parity_failures.append(
                        f"{backend}: processes returned {processes_count}, "
                        f"sequential {expected}"
                    )
                result = net_executors[dataset].run(engine, query)
                if result.embeddings != expected:
                    parity_failures.append(
                        f"{backend}: sockets returned {result.embeddings}, "
                        f"sequential {expected}"
                    )
                balanced_count = net_balanced[dataset].run(
                    engine, query
                ).embeddings
                if balanced_count != expected:
                    parity_failures.append(
                        f"{backend}: balanced sockets returned "
                        f"{balanced_count}, sequential {expected}"
                    )
                for stats in result.worker_stats:
                    payload_bytes[stats.worker_id] += stats.payload_bytes

            # count_bfs through the engine API exercises the plumbing.
            dataset, query = queries[0][0], queries[0][1]
            engine = engines[dataset][backend]
            engine._net_executor = net_executors[dataset]
            if engine.count_bfs(
                query, executor="sockets", shards=NUM_SHARDS
            ) != reference[0]:
                parity_failures.append(f"{backend}: count_bfs diverged")
            engine._net_executor = None  # the benchmark owns its close

            # Timing: best-of-REPEATS full-workload passes.
            threads_s = min(
                _time_pass(
                    lambda: [
                        threaded.run(engines[dataset][backend], query)
                        for dataset, query in queries
                    ]
                )
                for _ in range(REPEATS)
            )
            processes_s = min(
                _time_pass(
                    lambda: [
                        process_executors[dataset].run(
                            engines[dataset][backend], query
                        )
                        for dataset, query in queries
                    ]
                )
                for _ in range(REPEATS)
            )
            sockets_s = min(
                _time_pass(
                    lambda: [
                        net_executors[dataset].run(
                            engines[dataset][backend], query
                        )
                        for dataset, query in queries
                    ]
                )
                for _ in range(REPEATS)
            )
        finally:
            for executor in net_executors.values():
                executor.close()
            for executor in net_balanced.values():
                executor.close()
            for executor in process_executors.values():
                executor.close()

        rows.append(
            {
                "backend": backend,
                "work_model": work_model_label(backend),
                f"threads{NUM_SHARDS}_seconds": round(threads_s, 6),
                f"processes{NUM_SHARDS}_seconds": round(processes_s, 6),
                f"sockets{NUM_SHARDS}_seconds": round(sockets_s, 6),
                "sockets_vs_threads": round(
                    threads_s / max(sockets_s, 1e-12), 3
                ),
                "sockets_vs_processes": round(
                    processes_s / max(sockets_s, 1e-12), 3
                ),
                "payload_bytes_per_shard": payload_bytes,
                "payload_bytes_total": sum(payload_bytes),
            }
        )

    by_backend = {row["backend"]: row for row in rows}
    summary = {
        "benchmark": "net",
        "workload": {
            "datasets": list(DATASETS),
            "settings": list(SETTINGS),
            "queries_per_setting": QUERIES_PER_SETTING,
            "repeats": REPEATS,
            "queries": len(queries),
        },
        "num_shards": NUM_SHARDS,
        "cores": usable_cores(),
        "sharding_modes_checked": ["uniform", "balanced"],
        "parity_failures": parity_failures,
        "rows": rows,
        "mask_payload_vs_tuple_payload": {
            backend: round(
                by_backend[backend]["payload_bytes_total"]
                / max(by_backend["merge"]["payload_bytes_total"], 1),
                3,
            )
            for backend in MASK_BACKENDS
        },
    }
    return summary


def write_summary(summary: dict) -> str:
    with open(RESULT_PATH, "w", encoding="utf-8") as stream:
        json.dump(summary, stream, indent=2)
        stream.write("\n")
    return RESULT_PATH


# ----------------------------------------------------------------------
# pytest entry points (the gates)
# ----------------------------------------------------------------------
import pytest


@pytest.fixture(scope="module")
def summary():
    result = run_benchmark()
    write_summary(result)
    return result


def test_socket_counts_bit_identical(summary):
    """count/count_bfs over sockets == sequential == threads ==
    processes, all three index backends, every workload query."""
    assert summary["parity_failures"] == []


@pytest.mark.parametrize("backend", MASK_BACKENDS)
def test_socket_payloads_stay_masks(summary, backend):
    """On the identical trace, the socket payloads of the mask backends
    must stay at or below the merge backend's edge-id tuple payloads —
    proof the wire carries the compressed representation."""
    ratio = summary["mask_payload_vs_tuple_payload"][backend]
    assert 0 < ratio <= 1.0, summary


def main() -> int:
    result = run_benchmark()
    path = write_summary(result)
    for row in result["rows"]:
        print(
            f"{row['backend']}: "
            f"threads{NUM_SHARDS}={row[f'threads{NUM_SHARDS}_seconds']:.4f}s "
            f"processes{NUM_SHARDS}="
            f"{row[f'processes{NUM_SHARDS}_seconds']:.4f}s "
            f"sockets{NUM_SHARDS}={row[f'sockets{NUM_SHARDS}_seconds']:.4f}s "
            f"(x{row['sockets_vs_threads']:.2f} vs threads, "
            f"payload={row['payload_bytes_total']}B)"
        )
    ratios = result["mask_payload_vs_tuple_payload"]
    print(
        f"cores={result['cores']} mask/tuple payload ratio: "
        + ", ".join(f"{k}={v:.3f}" for k, v in ratios.items())
        + f" -> {path}"
    )
    ok = not result["parity_failures"] and all(
        0 < ratio <= 1.0 for ratio in ratios.values()
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
