"""Table II — dataset statistics.

Regenerates the paper's dataset table for the ten scaled synthetic
analogues: |V|, |E|, |Σ|, a_max, average arity, partition count and the
graph/index sizes.  The benchmark times the offline preprocessing
(partitioned store construction) for a mid-sized dataset.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table
from repro.datasets import DATASET_ORDER, PAPER_PROFILES, load_dataset, load_store
from repro.hypergraph import PartitionedStore, dataset_statistics

from conftest import write_report


@pytest.fixture(scope="module")
def table2_rows():
    rows = []
    for name in DATASET_ORDER:
        stats = dataset_statistics(name, load_dataset(name), load_store(name))
        row = stats.as_row()
        paper = PAPER_PROFILES[name]
        row["paper |V|"] = paper.num_vertices
        row["paper |E|"] = paper.num_edges
        row["paper a"] = paper.average_arity
        rows.append(row)
    report = format_table(rows, title="Table II (scaled analogues vs paper)")
    write_report("table2_datasets", report)
    print("\n" + report)
    return rows


def test_table2_covers_all_datasets(table2_rows):
    assert [row["dataset"] for row in table2_rows] == list(DATASET_ORDER)


def test_table2_shape_tracks_paper(table2_rows):
    """Vertex-rich vs edge-rich regime must match the paper per dataset."""
    for row in table2_rows:
        assert (row["|V|"] > row["|E|"]) == (row["paper |V|"] > row["paper |E|"])


def test_bench_offline_preprocessing(benchmark, table2_rows):
    """Time the whole offline stage (partitioning + inverted index)."""
    data = load_dataset("TC")
    result = benchmark(lambda: PartitionedStore(data))
    assert result.num_partitions() > 0
