"""Benchmark: process-sharded execution over the mask-native seam.

Runs the Fig. 8 trace (the same HB/SB × q2/q3/q6 workload as
``bench_index_backends``) through three execution engines and gates the
sharded subsystem:

* **parity** — sharded ``count``/``count_bfs`` results must be
  bit-identical to the sequential engine for all three index backends
  (always enforced);
* **payload** — the bytes crossing the process boundaries must be the
  backend's *mask* representation, not decoded edge-id lists: on the
  identical trace the bitset/adaptive payload totals must undercut the
  merge backend's tuple payloads (always enforced);
* **speedup** — processes ≥ 1.5× wall-clock over the threaded executor
  at 4 shards.  Enforced only on hosts with ≥ 2 usable cores: the
  threaded executor is GIL-serialised, so the process pool's advantage
  *is* the extra cores — on a single-core host every executor
  serialises onto the same CPU and the ratio merely records overhead,
  which the JSON captures but no gate can meaningfully demand.

The timing protocol measures steady-state serving: the worker pools are
built once (the offline stage, like store building) and every timed
pass replays the full workload; ``REPEATS`` passes, best-of wins.
Results land in ``BENCH_sharding.json`` at the repo root.

Run standalone (``python benchmarks/bench_sharding.py``) or via pytest
(``pytest benchmarks/bench_sharding.py``); the pytest entry points are
the gates.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro import HGMatch
from repro.bench import (
    FIG8_DATASETS as DATASETS,
    FIG8_QUERIES_PER_SETTING as QUERIES_PER_SETTING,
    FIG8_SETTINGS as SETTINGS,
    fig8_queries,
    make_engine,
    time_pass as _time_pass,
    usable_cores,
    work_model_label,
)
from repro.datasets import load_dataset
from repro.parallel import ProcessShardExecutor, ThreadedExecutor

REPEATS = 3

BACKENDS = ("merge", "bitset", "adaptive")
#: The seam's backends: payloads are row masks / chunk maps.
MASK_BACKENDS = ("bitset", "adaptive")
NUM_SHARDS = 4
SPEEDUP_GATE = 1.5

RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_sharding.json",
)


def run_benchmark() -> dict:
    """Time and verify every backend; returns the JSON summary."""
    queries = fig8_queries()
    engines: Dict[str, Dict[str, HGMatch]] = {
        dataset: {
            backend: make_engine(load_dataset(dataset), index_backend=backend)
            for backend in BACKENDS
        }
        for dataset in DATASETS
    }
    # Sequential reference counts (the bit-identity baseline).
    reference = [
        engines[dataset][BACKENDS[0]].count(query)
        for dataset, query in queries
    ]

    rows = []
    parity_failures: List[str] = []
    for backend in BACKENDS:
        executors: Dict[str, ProcessShardExecutor] = {}
        try:
            # Offline stage: build the shard pools and warm them (the
            # first run builds each worker's store shard).
            for dataset in DATASETS:
                executor = ProcessShardExecutor(
                    NUM_SHARDS, index_backend=backend
                )
                executors[dataset] = executor
                executor.run(engines[dataset][backend], queries[0][1])

            # Parity: sharded count/count_bfs == sequential, per query.
            payload_bytes = [0] * NUM_SHARDS
            for (dataset, query), expected in zip(queries, reference):
                engine = engines[dataset][backend]
                if engine.count(query) != expected:
                    parity_failures.append(f"{backend}: sequential drifted")
                result = executors[dataset].run(engine, query)
                if result.embeddings != expected:
                    parity_failures.append(
                        f"{backend}: processes returned {result.embeddings}, "
                        f"sequential {expected}"
                    )
                if engine.count_bfs(query) != expected:
                    parity_failures.append(f"{backend}: count_bfs diverged")
                for stats in result.worker_stats:
                    payload_bytes[stats.worker_id] += stats.payload_bytes

            # Timing: best-of-REPEATS full-workload passes.
            sequential_s = min(
                _time_pass(
                    lambda: [
                        engines[dataset][backend].count(query)
                        for dataset, query in queries
                    ]
                )
                for _ in range(REPEATS)
            )
            threaded = ThreadedExecutor(num_workers=NUM_SHARDS)
            threads_s = min(
                _time_pass(
                    lambda: [
                        threaded.run(engines[dataset][backend], query)
                        for dataset, query in queries
                    ]
                )
                for _ in range(REPEATS)
            )
            processes_s = min(
                _time_pass(
                    lambda: [
                        executors[dataset].run(
                            engines[dataset][backend], query
                        )
                        for dataset, query in queries
                    ]
                )
                for _ in range(REPEATS)
            )
        finally:
            for executor in executors.values():
                executor.close()

        rows.append(
            {
                "backend": backend,
                "work_model": work_model_label(backend),
                "sequential_seconds": round(sequential_s, 6),
                f"threads{NUM_SHARDS}_seconds": round(threads_s, 6),
                f"processes{NUM_SHARDS}_seconds": round(processes_s, 6),
                "speedup_vs_threads": round(
                    threads_s / max(processes_s, 1e-12), 3
                ),
                "speedup_vs_sequential": round(
                    sequential_s / max(processes_s, 1e-12), 3
                ),
                "payload_bytes_per_shard": payload_bytes,
                "payload_bytes_total": sum(payload_bytes),
            }
        )

    by_backend = {row["backend"]: row for row in rows}
    cores = usable_cores()
    summary = {
        "benchmark": "sharding",
        "workload": {
            "datasets": list(DATASETS),
            "settings": list(SETTINGS),
            "queries_per_setting": QUERIES_PER_SETTING,
            "repeats": REPEATS,
            "queries": len(queries),
        },
        "num_shards": NUM_SHARDS,
        "cores": cores,
        "speedup_gate": SPEEDUP_GATE,
        "speedup_gate_enforced": cores >= 2,
        "parity_failures": parity_failures,
        "rows": rows,
        # Headline numbers: the mask seam's backend.
        "bitset_speedup_vs_threads": by_backend["bitset"][
            "speedup_vs_threads"
        ],
        "mask_payload_vs_tuple_payload": {
            backend: round(
                by_backend[backend]["payload_bytes_total"]
                / max(by_backend["merge"]["payload_bytes_total"], 1),
                3,
            )
            for backend in MASK_BACKENDS
        },
    }
    return summary


def write_summary(summary: dict) -> str:
    with open(RESULT_PATH, "w", encoding="utf-8") as stream:
        json.dump(summary, stream, indent=2)
        stream.write("\n")
    return RESULT_PATH


# ----------------------------------------------------------------------
# pytest entry points (the gates)
# ----------------------------------------------------------------------
import pytest


@pytest.fixture(scope="module")
def summary():
    result = run_benchmark()
    write_summary(result)
    return result


def test_sharded_counts_bit_identical(summary):
    """count/count_bfs parity against the sequential engine, all three
    index backends, every workload query."""
    assert summary["parity_failures"] == []


@pytest.mark.parametrize("backend", MASK_BACKENDS)
def test_masks_cross_the_boundary(summary, backend):
    """On the identical trace, mask payloads must undercut the edge-id
    tuple payloads the merge backend ships — proof the boundary carries
    the compressed representation, not decoded lists."""
    ratio = summary["mask_payload_vs_tuple_payload"][backend]
    assert 0 < ratio < 1.0, summary


def test_processes_beat_threads_at_4_shards(summary):
    """The ≥ 1.5× wall-clock gate (multi-core hosts only; see module
    docstring for why a single core cannot express the comparison)."""
    if not summary["speedup_gate_enforced"]:
        pytest.skip(
            f"host exposes {summary['cores']} usable core(s); the "
            f"threaded-vs-process comparison needs >= 2"
        )
    assert summary["bitset_speedup_vs_threads"] >= SPEEDUP_GATE, summary


def main() -> int:
    result = run_benchmark()
    path = write_summary(result)
    for row in result["rows"]:
        print(
            f"{row['backend']}: seq={row['sequential_seconds']:.4f}s "
            f"threads{NUM_SHARDS}={row[f'threads{NUM_SHARDS}_seconds']:.4f}s "
            f"processes{NUM_SHARDS}={row[f'processes{NUM_SHARDS}_seconds']:.4f}s "
            f"(x{row['speedup_vs_threads']:.2f} vs threads, "
            f"payload={row['payload_bytes_total']}B "
            f"{row['payload_bytes_per_shard']})"
        )
    print(
        f"cores={result['cores']} "
        f"bitset speedup vs threads: x{result['bitset_speedup_vs_threads']:.2f} "
        f"(gate {'ENFORCED' if result['speedup_gate_enforced'] else 'SKIPPED: single core'}) "
        f"-> {path}"
    )
    # Mirror the pytest gates for CI's script-mode run.
    ok = not result["parity_failures"] and all(
        0 < ratio < 1.0
        for ratio in result["mask_payload_vs_tuple_payload"].values()
    )
    if result["speedup_gate_enforced"]:
        ok = ok and result["bitset_speedup_vs_threads"] >= SPEEDUP_GATE
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
