"""Benchmark: process-sharded execution over the mask-native seam.

Runs the Fig. 8 trace (the same HB/SB × q2/q3/q6 workload as
``bench_index_backends``) through three execution engines and gates the
sharded subsystem:

* **parity** — sharded ``count``/``count_bfs`` results must be
  bit-identical to the sequential engine for all three index backends
  × both shard placements (uniform and balanced), with streaming and
  barrier composition (always enforced);
* **payload** — the bytes crossing the process boundaries must be the
  backend's *mask* representation, not decoded edge-id lists: on the
  identical trace the bitset/adaptive payload totals must undercut the
  merge backend's tuple payloads (always enforced);
* **speedup** — processes ≥ 1.5× wall-clock over the threaded executor
  at 4 shards.  Enforced only on hosts with ≥ 2 usable cores: the
  threaded executor is GIL-serialised, so the process pool's advantage
  *is* the extra cores — on a single-core host every executor
  serialises onto the same CPU and the ratio merely records overhead,
  which the JSON captures but no gate can meaningfully demand.  Set
  ``REPRO_BENCH_MIN_CORES`` (CI does: its runners are multi-core) to
  make a host with fewer usable cores *fail* instead of skip — the
  guard that keeps the gate from silently never enforcing;
* **streaming** — streaming composition (fold shard payloads as they
  arrive) must show no wall-clock regression against the barrier
  gather on the standard trace (≤ ``STREAM_TOLERANCE`` of it);
* **skew** — on the skewed trace (one hot signature partition, see
  :func:`repro.bench.skewed_instance`), balanced placement must cut
  the max/mean per-shard CPU-load imbalance by ≥ ``SKEW_GATE``× vs
  uniform, with bit-identical counts.  CPU load (``WorkerStats.
  cpu_time``) is used rather than wall ``busy_time`` so the gate holds
  on contended single-core hosts too.

The timing protocol measures steady-state serving: the worker pools are
built once (the offline stage, like store building) and every timed
pass replays the full workload; ``REPEATS`` passes, best-of wins.
Results land in ``BENCH_sharding.json`` at the repo root.

Run standalone (``python benchmarks/bench_sharding.py``; pass
``--skew`` to run only the fast skew section, the ``make bench-skew``
smoke) or via pytest (``pytest benchmarks/bench_sharding.py``); the
pytest entry points are the gates.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro import HGMatch
from repro.bench import (
    FIG8_DATASETS as DATASETS,
    FIG8_QUERIES_PER_SETTING as QUERIES_PER_SETTING,
    FIG8_SETTINGS as SETTINGS,
    SKEW_NUM_SHARDS,
    SKEW_PARTITIONS,
    fig8_queries,
    make_engine,
    skewed_instance,
    time_pass as _time_pass,
    usable_cores,
    work_model_label,
)
from repro.datasets import load_dataset
from repro.parallel import (
    ProcessShardExecutor,
    ThreadedExecutor,
    load_imbalance,
    worker_loads,
)

REPEATS = 3

BACKENDS = ("merge", "bitset", "adaptive")
#: The seam's backends: payloads are row masks / chunk maps.
MASK_BACKENDS = ("bitset", "adaptive")
NUM_SHARDS = 4
SPEEDUP_GATE = 1.5
#: Streaming compose may cost at most this factor of the barrier gather
#: on the standard trace (it should win or tie; the headroom absorbs
#: timer noise on sub-second workloads).
STREAM_TOLERANCE = 1.25
#: Balanced placement must divide the skewed trace's load imbalance by
#: at least this factor.
SKEW_GATE = 1.3
#: Workload replays the skew trace this many times per mode so the
#: per-shard CPU totals dominate timer noise.
SKEW_PASSES = 40


def required_cores() -> int:
    """``REPRO_BENCH_MIN_CORES``: minimum usable cores the host must
    expose before the wall-clock speedup gate may *skip* (0 = never
    required, the default for dev laptops/containers)."""
    value = os.environ.get("REPRO_BENCH_MIN_CORES", "")
    try:
        return int(value) if value else 0
    except ValueError:
        raise ValueError(
            f"REPRO_BENCH_MIN_CORES must be an integer, got {value!r}"
        ) from None


RESULT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_sharding.json",
)


def run_benchmark() -> dict:
    """Time and verify every backend; returns the JSON summary."""
    queries = fig8_queries()
    engines: Dict[str, Dict[str, HGMatch]] = {
        dataset: {
            backend: make_engine(load_dataset(dataset), index_backend=backend)
            for backend in BACKENDS
        }
        for dataset in DATASETS
    }
    # Sequential reference counts (the bit-identity baseline).
    reference = [
        engines[dataset][BACKENDS[0]].count(query)
        for dataset, query in queries
    ]

    rows = []
    parity_failures: List[str] = []
    for backend in BACKENDS:
        executors: Dict[str, ProcessShardExecutor] = {}
        balanced: Dict[str, ProcessShardExecutor] = {}
        try:
            # Offline stage: build the shard pools and warm them (the
            # first run builds each worker's store shard).
            for dataset in DATASETS:
                executor = ProcessShardExecutor(
                    NUM_SHARDS, index_backend=backend
                )
                executors[dataset] = executor
                executor.run(engines[dataset][backend], queries[0][1])
                executor_balanced = ProcessShardExecutor(
                    NUM_SHARDS, index_backend=backend, sharding="balanced"
                )
                balanced[dataset] = executor_balanced
                executor_balanced.run(engines[dataset][backend], queries[0][1])

            # Parity: sharded count/count_bfs == sequential, per query,
            # for both placements and both composition modes.
            payload_bytes = [0] * NUM_SHARDS
            for (dataset, query), expected in zip(queries, reference):
                engine = engines[dataset][backend]
                if engine.count(query) != expected:
                    parity_failures.append(f"{backend}: sequential drifted")
                result = executors[dataset].run(engine, query)
                if result.embeddings != expected:
                    parity_failures.append(
                        f"{backend}: processes returned {result.embeddings}, "
                        f"sequential {expected}"
                    )
                if balanced[dataset].run(engine, query).embeddings != expected:
                    parity_failures.append(
                        f"{backend}: balanced placement diverged"
                    )
                barrier = executors[dataset].run(engine, query, stream=False)
                if barrier.embeddings != expected:
                    parity_failures.append(
                        f"{backend}: barrier compose diverged"
                    )
                if engine.count_bfs(query) != expected:
                    parity_failures.append(f"{backend}: count_bfs diverged")
                for stats in result.worker_stats:
                    payload_bytes[stats.worker_id] += stats.payload_bytes

            # Timing: best-of-REPEATS full-workload passes.
            sequential_s = min(
                _time_pass(
                    lambda: [
                        engines[dataset][backend].count(query)
                        for dataset, query in queries
                    ]
                )
                for _ in range(REPEATS)
            )
            threaded = ThreadedExecutor(num_workers=NUM_SHARDS)
            threads_s = min(
                _time_pass(
                    lambda: [
                        threaded.run(engines[dataset][backend], query)
                        for dataset, query in queries
                    ]
                )
                for _ in range(REPEATS)
            )
            # Stream and barrier passes interleave so clock drift and
            # cache state cancel out of their ratio.
            processes_s = float("inf")
            barrier_s = float("inf")
            for _ in range(REPEATS):
                processes_s = min(
                    processes_s,
                    _time_pass(
                        lambda: [
                            executors[dataset].run(
                                engines[dataset][backend], query
                            )
                            for dataset, query in queries
                        ]
                    ),
                )
                barrier_s = min(
                    barrier_s,
                    _time_pass(
                        lambda: [
                            executors[dataset].run(
                                engines[dataset][backend], query,
                                stream=False,
                            )
                            for dataset, query in queries
                        ]
                    ),
                )
        finally:
            for executor in executors.values():
                executor.close()
            for executor in balanced.values():
                executor.close()

        rows.append(
            {
                "backend": backend,
                "work_model": work_model_label(backend),
                "sequential_seconds": round(sequential_s, 6),
                f"threads{NUM_SHARDS}_seconds": round(threads_s, 6),
                f"processes{NUM_SHARDS}_seconds": round(processes_s, 6),
                f"processes{NUM_SHARDS}_barrier_seconds": round(
                    barrier_s, 6
                ),
                "speedup_vs_threads": round(
                    threads_s / max(processes_s, 1e-12), 3
                ),
                "speedup_vs_sequential": round(
                    sequential_s / max(processes_s, 1e-12), 3
                ),
                "stream_vs_barrier": round(
                    processes_s / max(barrier_s, 1e-12), 3
                ),
                "payload_bytes_per_shard": payload_bytes,
                "payload_bytes_total": sum(payload_bytes),
            }
        )

    by_backend = {row["backend"]: row for row in rows}
    cores = usable_cores()
    summary = {
        "benchmark": "sharding",
        "workload": {
            "datasets": list(DATASETS),
            "settings": list(SETTINGS),
            "queries_per_setting": QUERIES_PER_SETTING,
            "repeats": REPEATS,
            "queries": len(queries),
        },
        "num_shards": NUM_SHARDS,
        "cores": cores,
        "required_cores": required_cores(),
        "speedup_gate": SPEEDUP_GATE,
        "speedup_gate_enforced": cores >= 2,
        "stream_tolerance": STREAM_TOLERANCE,
        "parity_failures": parity_failures,
        "rows": rows,
        # Headline numbers: the mask seam's backend.
        "bitset_speedup_vs_threads": by_backend["bitset"][
            "speedup_vs_threads"
        ],
        "bitset_stream_vs_barrier": by_backend["bitset"][
            "stream_vs_barrier"
        ],
        "mask_payload_vs_tuple_payload": {
            backend: round(
                by_backend[backend]["payload_bytes_total"]
                / max(by_backend["merge"]["payload_bytes_total"], 1),
                3,
            )
            for backend in MASK_BACKENDS
        },
        "skew": run_skew_benchmark(),
    }
    return summary


def run_skew_benchmark() -> dict:
    """The skewed trace: per-shard CPU-load imbalance, uniform vs
    balanced placement, plus count parity across the two placements."""
    data, skew_queries = skewed_instance()
    reference_engine = HGMatch(data, index_backend="bitset")
    expected = [reference_engine.count(query) for query in skew_queries]
    modes = {}
    parity_failures: List[str] = []
    for mode in ("uniform", "balanced"):
        engine = HGMatch(data, index_backend="bitset")
        executor = ProcessShardExecutor(
            SKEW_NUM_SHARDS, index_backend="bitset", sharding=mode
        )
        try:
            executor.run(engine, skew_queries[0])  # warm the pool
            loads = [0.0] * SKEW_NUM_SHARDS
            for _ in range(SKEW_PASSES):
                for query, count in zip(skew_queries, expected):
                    result = executor.run(engine, query)
                    if result.embeddings != count:
                        parity_failures.append(
                            f"skew {mode}: returned {result.embeddings}, "
                            f"sequential {count}"
                        )
                    for shard_id, load in enumerate(
                        worker_loads(result.worker_stats)
                    ):
                        loads[shard_id] += load
            mean = sum(loads) / len(loads)
            modes[mode] = {
                "cpu_seconds_per_shard": [round(l, 6) for l in loads],
                "imbalance": round(max(loads) / max(mean, 1e-12), 4),
            }
        finally:
            executor.close()
    improvement = modes["uniform"]["imbalance"] / max(
        modes["balanced"]["imbalance"], 1e-12
    )
    return {
        "partitions": [list(partition) for partition in SKEW_PARTITIONS],
        "num_shards": SKEW_NUM_SHARDS,
        "passes": SKEW_PASSES,
        "counts": expected,
        "parity_failures": parity_failures,
        "uniform": modes["uniform"],
        "balanced": modes["balanced"],
        "imbalance_improvement": round(improvement, 3),
        "gate": SKEW_GATE,
    }


def write_summary(summary: dict) -> str:
    with open(RESULT_PATH, "w", encoding="utf-8") as stream:
        json.dump(summary, stream, indent=2)
        stream.write("\n")
    return RESULT_PATH


# ----------------------------------------------------------------------
# pytest entry points (the gates)
# ----------------------------------------------------------------------
import pytest


@pytest.fixture(scope="module")
def summary():
    result = run_benchmark()
    write_summary(result)
    return result


def test_sharded_counts_bit_identical(summary):
    """count/count_bfs parity against the sequential engine, all three
    index backends, uniform and balanced placement, streaming and
    barrier composition, every workload query."""
    assert summary["parity_failures"] == []


@pytest.mark.parametrize("backend", MASK_BACKENDS)
def test_masks_cross_the_boundary(summary, backend):
    """On the identical trace, mask payloads must undercut the edge-id
    tuple payloads the merge backend ships — proof the boundary carries
    the compressed representation, not decoded lists."""
    ratio = summary["mask_payload_vs_tuple_payload"][backend]
    assert 0 < ratio < 1.0, summary


def test_processes_beat_threads_at_4_shards(summary):
    """The ≥ 1.5× wall-clock gate (multi-core hosts only; see module
    docstring for why a single core cannot express the comparison).
    ``REPRO_BENCH_MIN_CORES`` turns an unexpected skip into a failure —
    CI sets it to assert its runners actually enforce this gate."""
    if not summary["speedup_gate_enforced"]:
        required = summary["required_cores"]
        if required and summary["cores"] < required:
            pytest.fail(
                f"host exposes {summary['cores']} usable core(s) but "
                f"REPRO_BENCH_MIN_CORES={required}: the speedup gate "
                f"would silently never enforce on this runner"
            )
        pytest.skip(
            f"host exposes {summary['cores']} usable core(s); the "
            f"threaded-vs-process comparison needs >= 2"
        )
    assert summary["bitset_speedup_vs_threads"] >= SPEEDUP_GATE, summary


def test_streaming_compose_no_regression(summary):
    """Folding shard payloads as they arrive must not cost wall clock
    against the full-barrier gather on the standard trace."""
    for row in summary["rows"]:
        assert (
            row[f"processes{NUM_SHARDS}_seconds"]
            <= row[f"processes{NUM_SHARDS}_barrier_seconds"]
            * STREAM_TOLERANCE
        ), row


def test_skew_counts_bit_identical(summary):
    assert summary["skew"]["parity_failures"] == []


def test_balanced_beats_uniform_on_skewed_trace(summary):
    """Balanced placement must cut the skewed trace's per-shard load
    imbalance by ≥ SKEW_GATE× (gated on all hosts: the metric is CPU
    time, which contention cannot fake)."""
    skew = summary["skew"]
    assert skew["imbalance_improvement"] >= SKEW_GATE, skew


def _print_skew(skew: dict) -> None:
    print(
        f"skew: uniform imbalance x{skew['uniform']['imbalance']:.2f} "
        f"-> balanced x{skew['balanced']['imbalance']:.2f} "
        f"(improvement x{skew['imbalance_improvement']:.2f}, "
        f"gate x{skew['gate']:.1f}, counts {skew['counts']})"
    )


def _skew_ok(skew: dict) -> bool:
    return (
        not skew["parity_failures"]
        and skew["imbalance_improvement"] >= SKEW_GATE
    )


def main(argv=None) -> int:
    import sys

    argv = sys.argv[1:] if argv is None else argv
    if "--skew" in argv:
        # The fast smoke (`make bench-skew`): only the skewed trace.
        # Merge into the existing JSON so the full benchmark's numbers
        # survive the partial run.
        skew = run_skew_benchmark()
        result = {}
        if os.path.exists(RESULT_PATH):
            with open(RESULT_PATH, "r", encoding="utf-8") as stream:
                result = json.load(stream)
        result["skew"] = skew
        path = write_summary(result)
        _print_skew(skew)
        print(f"-> {path}")
        return 0 if _skew_ok(skew) else 1
    result = run_benchmark()
    path = write_summary(result)
    for row in result["rows"]:
        print(
            f"{row['backend']}: seq={row['sequential_seconds']:.4f}s "
            f"threads{NUM_SHARDS}={row[f'threads{NUM_SHARDS}_seconds']:.4f}s "
            f"processes{NUM_SHARDS}={row[f'processes{NUM_SHARDS}_seconds']:.4f}s "
            f"(x{row['speedup_vs_threads']:.2f} vs threads, "
            f"stream/barrier x{row['stream_vs_barrier']:.2f}, "
            f"payload={row['payload_bytes_total']}B "
            f"{row['payload_bytes_per_shard']})"
        )
    _print_skew(result["skew"])
    print(
        f"cores={result['cores']} "
        f"bitset speedup vs threads: x{result['bitset_speedup_vs_threads']:.2f} "
        f"(gate {'ENFORCED' if result['speedup_gate_enforced'] else 'SKIPPED: single core'}) "
        f"-> {path}"
    )
    # Mirror the pytest gates for CI's script-mode run.
    ok = not result["parity_failures"] and all(
        0 < ratio < 1.0
        for ratio in result["mask_payload_vs_tuple_payload"].values()
    )
    ok = ok and all(
        row[f"processes{NUM_SHARDS}_seconds"]
        <= row[f"processes{NUM_SHARDS}_barrier_seconds"] * STREAM_TOLERANCE
        for row in result["rows"]
    )
    ok = ok and _skew_ok(result["skew"])
    if result["speedup_gate_enforced"]:
        ok = ok and result["bitset_speedup_vs_threads"] >= SPEEDUP_GATE
    elif result["required_cores"] and result["cores"] < result[
        "required_cores"
    ]:
        print(
            f"FAIL: REPRO_BENCH_MIN_CORES={result['required_cores']} but "
            f"host exposes {result['cores']} usable core(s)"
        )
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
