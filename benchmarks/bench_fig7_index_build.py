"""Fig. 7 / Exp-1 — index building time and size.

For every dataset: the time to build the partitioned store with its
inverted hyperedge index, the raw graph size, and the index size.  The
paper's observations to reproduce: building is fast even for the largest
dataset, and the index size is similar to the graph size.
"""

from __future__ import annotations

import time

import pytest

from repro.bench import format_table
from repro.datasets import DATASET_ORDER, load_dataset
from repro.hypergraph import PartitionedStore, format_bytes
from repro.hypergraph.statistics import estimate_graph_bytes, estimate_index_bytes

from conftest import write_report


@pytest.fixture(scope="module")
def fig7_rows():
    rows = []
    for name in DATASET_ORDER:
        data = load_dataset(name)
        started = time.perf_counter()
        store = PartitionedStore(data)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "dataset": name,
                "index_time_s": round(elapsed, 4),
                "graph_size": format_bytes(estimate_graph_bytes(data)),
                "index_size": format_bytes(estimate_index_bytes(store)),
                "size_ratio": round(
                    estimate_index_bytes(store)
                    / max(estimate_graph_bytes(data), 1),
                    3,
                ),
            }
        )
    report = format_table(rows, title="Fig. 7 — index build time and size")
    write_report("fig7_index_build", report)
    print("\n" + report)
    return rows


def test_fig7_index_builds_fast(fig7_rows):
    """Paper: ~6.7 s for 4.2M hyperedges; scaled, every analogue builds
    well under a second."""
    assert all(row["index_time_s"] < 1.0 for row in fig7_rows)


def test_fig7_index_size_similar_to_graph(fig7_rows):
    """Exp-1's size observation: index ≈ graph size (ratio 1.0 here
    because both store one entry per incidence)."""
    for row in fig7_rows:
        assert 0.5 <= row["size_ratio"] <= 2.0


def test_bench_index_build_largest(benchmark, fig7_rows):
    data = load_dataset("AR")
    store = benchmark(lambda: PartitionedStore(data))
    assert store.num_partitions() > 0
