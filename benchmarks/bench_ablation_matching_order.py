"""Ablation — the cardinality-driven matching order (Algorithm 3).

DESIGN.md calls out the matching order as a core design choice: start at
the rarest signature, extend by minimum cardinality/connectivity.  This
ablation compares the Algorithm 3 order against the *reverse* of that
order and against the identity order, measuring total set-operation work
units on the same queries.  Expectation: the planned order never does
meaningfully more work and usually does much less.
"""

from __future__ import annotations

import pytest

from repro import HGMatch, MatchCounters
from repro.bench import format_table, workload
from repro.core.estimation import estimate_driven_order
from repro.core.ordering import compute_matching_order, is_connected_order
from repro.datasets import load_dataset, load_store
from repro.errors import TimeoutExceeded

from conftest import write_report

DATASETS = ("SB", "HB", "TC")


def _work_units(engine, query, order) -> "int | None":
    counters = MatchCounters()
    try:
        engine.count(query, order=order, counters=counters, time_budget=3.0)
    except TimeoutExceeded:
        return None
    return counters.work_units


@pytest.fixture(scope="module")
def ablation_rows():
    rows = []
    for dataset in DATASETS:
        engine = HGMatch(load_dataset(dataset), store=load_store(dataset))
        for index, query in enumerate(workload(dataset, "q4", 2)):
            planned = compute_matching_order(query, engine.store)
            estimated = estimate_driven_order(query, engine.store)
            reverse = tuple(reversed(planned))
            row = {
                "dataset": dataset,
                "query": index,
                "planned": _work_units(engine, query, planned),
                "estimate_driven": _work_units(engine, query, estimated),
            }
            row["reversed"] = (
                _work_units(engine, query, reverse)
                if is_connected_order(query, reverse)
                else None
            )
            identity = tuple(range(query.num_edges))
            row["identity"] = (
                _work_units(engine, query, identity)
                if is_connected_order(query, identity)
                else None
            )
            rows.append(row)
    printable = [
        {key: ("timeout/n-a" if value is None else value) for key, value in row.items()}
        for row in rows
    ]
    report = format_table(
        printable, title="Ablation — matching order (set-operation work units)"
    )
    write_report("ablation_matching_order", report)
    print("\n" + report)
    return rows


def test_planned_order_always_completes(ablation_rows):
    assert all(row["planned"] is not None for row in ablation_rows)


def test_planned_order_is_never_much_worse(ablation_rows):
    """The planned order's work is within 2× of any alternative that
    completed (it is usually far better; tiny queries can tie)."""
    for row in ablation_rows:
        for alternative in ("reversed", "identity"):
            other = row[alternative]
            if other is not None and other > 1000:
                assert row["planned"] <= 2 * other, row


def test_planned_order_wins_in_aggregate(ablation_rows):
    planned_total = sum(row["planned"] for row in ablation_rows)
    alternative_total = 0
    for row in ablation_rows:
        others = [row[k] for k in ("reversed", "identity") if row[k] is not None]
        alternative_total += max(others) if others else row["planned"]
    assert planned_total <= alternative_total


def test_bench_planned_order_execution(benchmark, ablation_rows):
    engine = HGMatch(load_dataset("SB"), store=load_store("SB"))
    query = workload("SB", "q4", 1)[0]
    count = benchmark(lambda: engine.count(query))
    assert count >= 1
