"""Fig. 6 — embedding-count distributions per query class.

For every dataset and query setting the paper draws a box plot of the
number of embeddings over 20 random queries.  This bench reproduces the
series (min / median / max per cell) with HGMatch as the counting
engine; the benchmark times counting over one full workload.
"""

from __future__ import annotations

import statistics

import pytest

from repro import HGMatch
from repro.bench import SETTING_NAMES, format_table, workload
from repro.datasets import SINGLE_THREAD_DATASETS, load_dataset, load_store
from repro.errors import TimeoutExceeded

from conftest import write_report

QUERIES = 4
TIMEOUT = 2.0


@pytest.fixture(scope="module")
def fig6_rows():
    rows = []
    for dataset in SINGLE_THREAD_DATASETS:
        engine = HGMatch(load_dataset(dataset), store=load_store(dataset))
        row = {"dataset": dataset}
        for setting in SETTING_NAMES:
            counts = []
            for query in workload(dataset, setting, QUERIES):
                try:
                    counts.append(engine.count(query, time_budget=TIMEOUT))
                except TimeoutExceeded:
                    continue
            if counts:
                row[setting] = (
                    f"{min(counts)}/"
                    f"{int(statistics.median(counts))}/"
                    f"{max(counts)}"
                )
            else:
                row[setting] = "-"
        rows.append(row)
    report = format_table(
        rows, title="Fig. 6 — embeddings per query class (min/median/max)"
    )
    write_report("fig6_embedding_distributions", report)
    print("\n" + report)
    return rows


def test_fig6_every_query_has_an_embedding(fig6_rows):
    """Workload queries are sampled sub-hypergraphs, so every completed
    cell's minimum count is ≥ 1 (the paper's guarantee)."""
    for row in fig6_rows:
        for setting in SETTING_NAMES:
            cell = row[setting]
            if cell != "-":
                assert int(cell.split("/")[0]) >= 1, (row["dataset"], setting)


def test_fig6_selectivity_spread(fig6_rows):
    """Across the grid there must be both selective (small) and
    unselective (large) queries, the spread Fig. 6 exhibits."""
    minima, maxima = [], []
    for row in fig6_rows:
        for setting in SETTING_NAMES:
            if row[setting] != "-":
                low, _, high = row[setting].split("/")
                minima.append(int(low))
                maxima.append(int(high))
    assert min(minima) <= 2
    assert max(maxima) >= 100


def test_bench_counting_workload(benchmark, fig6_rows):
    engine = HGMatch(load_dataset("CH"), store=load_store("CH"))
    queries = workload("CH", "q3", QUERIES)

    def count_all():
        return sum(engine.count(query) for query in queries)

    assert benchmark(count_all) >= len(queries)
