"""Pattern learning over semantic hypergraphs (paper's NLP application).

Following Menezes & Roth's semantic-hypergraph model the paper cites:
every word is a vertex (labelled with its part of speech) and every
sentence is a hyperedge over its words.  Pattern learning repeatedly
(1) turns a selected sentence into a query hypergraph, (2) matches it
against the corpus hypergraph, and (3) presents the embeddings for
validation — refining the query if nothing matches.

This example builds a toy corpus from template-generated sentences and
mines a two-sentence pattern: a subject-verb-object sentence sharing its
subject with a subject-verb-adjective sentence.

Run with:  python examples/semantic_patterns.py
"""

from __future__ import annotations

import random

from repro import HGMatch, Hypergraph, HypergraphBuilder

NOUN, VERB, ADJ, DET = "NOUN", "VERB", "ADJ", "DET"

NOUNS = ["cat", "dog", "bird", "fish", "horse", "mouse", "fox", "owl"]
VERBS = ["chases", "sees", "likes", "fears", "follows"]
ADJECTIVES = ["fast", "small", "clever", "loud"]


def build_corpus(rng: random.Random, sentences: int = 300) -> Hypergraph:
    """Template sentences: 'the N V the N' and 'the N is ADJ'."""
    builder = HypergraphBuilder()

    def word(token: str, pos: str) -> int:
        return builder.vertex_for_key(("w", token), pos)

    for _ in range(sentences):
        if rng.random() < 0.6:
            subject, obj = rng.sample(NOUNS, 2)
            verb = rng.choice(VERBS)
            builder.add_edge(
                [word("the", DET), word(subject, NOUN), word(verb, VERB),
                 word(obj, NOUN)]
            )
        else:
            subject = rng.choice(NOUNS)
            adjective = rng.choice(ADJECTIVES)
            builder.add_edge(
                [word("the", DET), word(subject, NOUN), word("is", VERB),
                 word(adjective, ADJ)]
            )
    return builder.build()


def pattern_query() -> Hypergraph:
    """Two sentences sharing one noun: (DET, NOUN, VERB, NOUN) and
    (DET, NOUN, VERB, ADJ) — 'X chases Y' while 'X is fast'."""
    return Hypergraph(
        labels=[DET, NOUN, VERB, NOUN, VERB, ADJ],
        edges=[{0, 1, 2, 3}, {0, 1, 4, 5}],
    )


def main() -> None:
    rng = random.Random(99)
    corpus = build_corpus(rng)
    print("Corpus hypergraph:", corpus,
          f"({corpus.num_edges} distinct sentences)")

    engine = HGMatch(corpus)
    query = pattern_query()
    print("Pattern:", query, "- SVO sentence + predicate sentence sharing a noun")

    embeddings = list(engine.match(query))
    print(f"\nFound {len(embeddings)} pattern instances; examples:")

    # Present embeddings for human validation, as the pattern-learning
    # loop in the paper describes.
    shown = 0
    for embedding in embeddings:
        svo_edge, pred_edge = embedding.edge_ids
        svo = sorted(corpus.edge(svo_edge))
        pred = sorted(corpus.edge(pred_edge))
        print(f"  sentence#{svo_edge} {svo}  +  sentence#{pred_edge} {pred}")
        shown += 1
        if shown >= 5:
            break

    if not embeddings:
        # The refinement branch of the loop: relax the pattern.
        print("No matches; a pattern-learning loop would now relax the query.")


if __name__ == "__main__":
    main()
