"""Parallel execution: scheduling, scaling and memory (paper §VI).

Runs a heavy query on the AR (Amazon-reviews analogue) dataset through
the three execution modes of this reproduction:

* the sequential LIFO loop,
* the threaded work-stealing executor (correctness + load accounting;
  the GIL hides wall-clock speedup, see DESIGN.md),
* a localhost *socket cluster* — shard-worker TCP servers spawned on
  loopback ports and driven by the network coordinator, i.e. the full
  multi-host wire path (framing, handshake, versioned mask payloads;
  see docs/WIRE_FORMAT.md) on one machine,
* the discrete-event simulated executor that reproduces the paper's
  scalability curve with a 20-physical-core NUMA knee,

and compares task-based scheduling against BFS materialisation for
memory (the Fig. 11 phenomenon).

Run with:  python examples/parallel_scaling.py
"""

from __future__ import annotations

from repro import HGMatch
from repro.bench import workload
from repro.datasets import load_dataset
from repro.parallel import (
    CostModel,
    NetShardExecutor,
    SimulatedExecutor,
    ThreadedExecutor,
    measure_memory,
    simulate_speedups,
    spawn_local_cluster,
)


def main() -> None:
    data = load_dataset("AR")
    engine = HGMatch(data)
    print("Dataset:", data)

    queries = workload("AR", "q3", 6)
    query = max(queries, key=lambda q: engine.count(q, time_budget=5.0))
    expected = engine.count(query)
    print("Heavy q3 query:", query, "->", expected, "embeddings")

    print("\nThreaded executor (4 workers):")
    result = ThreadedExecutor(num_workers=4).run(engine, query)
    print("  embeddings:", result.embeddings, "(equals sequential:",
          result.embeddings == expected, ")")
    print("  per-worker tasks:",
          [stats.tasks_executed for stats in result.worker_stats])
    print("  load imbalance (max/mean busy time):",
          round(result.load_imbalance(), 3))

    print("\nLocalhost socket cluster (4 shard workers over TCP):")
    cluster = spawn_local_cluster(data, num_shards=4)
    net = NetShardExecutor(addresses=cluster.addresses)
    try:
        socket_result = net.run(engine, query)
        print("  embeddings:", socket_result.embeddings,
              "(equals threaded:",
              socket_result.embeddings == result.embeddings, ")")
        assert socket_result.embeddings == result.embeddings, (
            "socket cluster diverged from the threaded executor"
        )
        print("  per-shard payload bytes on the wire:",
              [stats.payload_bytes for stats in socket_result.worker_stats])
        print("  workers:", ", ".join(
            f"{host}:{port}" for host, port in cluster.addresses))
    finally:
        net.close()
        cluster.close()

    print("\nSimulated scalability (Fig. 10 shape, physical cores = 20):")
    rows = simulate_speedups(
        engine, query, [1, 2, 4, 8, 16, 20, 32, 60],
        cost_model=CostModel(physical_cores=20),
    )
    for row in rows:
        bar = "#" * int(round(row["speedup"]))
        print(f"  {row['threads']:>3} threads: speedup {row['speedup']:6.2f}  {bar}")

    print("\nWork stealing vs static assignment (Fig. 12 shape, 8 workers):")
    with_steal = SimulatedExecutor(8, stealing=True).run(engine, query)
    without = SimulatedExecutor(8, stealing=False).run(engine, query)
    print("  stealing on : makespan", round(with_steal.makespan, 1),
          "imbalance", round(with_steal.load_imbalance(), 3))
    print("  stealing off: makespan", round(without.makespan, 1),
          "imbalance", round(without.load_imbalance(), 3))

    print("\nScheduler memory vs BFS (Fig. 11 shape):")
    task = measure_memory(engine, query, "task")
    bfs = measure_memory(engine, query, "bfs")
    print("  task-based peak:", task.peak_partial_embeddings,
          "partial embeddings")
    print("  BFS peak       :", bfs.peak_partial_embeddings,
          "partial embeddings")


if __name__ == "__main__":
    main()
