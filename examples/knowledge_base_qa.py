"""Question answering over a hypergraph knowledge base (paper §VII-D).

Rebuilds the paper's case study on a synthetic JF17K-style knowledge
hypergraph: non-binary facts like (Player, Team, Match) and
(Actor, Character, TVShow, Season) are hyperedges over typed entity
vertices, and natural-language questions become query hypergraphs.

Question 1: "Which football players represented different teams in
different matches?"            (Fig. 13a)
Question 2: "Which actors played the same character in a TV show on
different seasons?"            (Fig. 13b)

Run with:  python examples/knowledge_base_qa.py
"""

from __future__ import annotations

from collections import Counter

from repro import HGMatch
from repro.dataflow import Aggregate, DataflowGraph
from repro.datasets import (
    build_knowledge_base,
    query_players_two_teams,
    query_recast_character,
)


def main() -> None:
    kb = build_knowledge_base()
    engine = HGMatch(kb)
    print("Knowledge base:", kb)
    print("Fact schemas:", sorted({s for s in kb.edge_signatures()})[:4], "...")

    # ------------------------------------------------------------------
    question1 = query_players_two_teams()
    print("\nQ1: players who represented different teams in different matches")
    count1 = engine.count(question1)
    print(f"   {count1} embeddings (the paper reports 111 on real JF17K)")

    # Show a few concrete answers, like the paper's Óscar Cardozo example.
    print("   sample answers (player, team-a/match-a, team-b/match-b):")
    for embedding in list(engine.match(question1))[:3]:
        binding = next(embedding.vertex_mappings())
        player, team_a, match_a, team_b, match_b = (
            binding[0], binding[1], binding[2], binding[3], binding[4],
        )
        print(
            f"     player#{player}: team#{team_a} in match#{match_a}"
            f" vs team#{team_b} in match#{match_b}"
        )

    # Aggregation (the paper's future-work operator): answers per player.
    per_player = Aggregate(
        key=lambda data, item: min(data.edge(item[0]) & data.edge(item[1]))
    )
    groups: Counter = DataflowGraph.from_query(
        engine, question1, per_player
    ).execute()
    busiest = groups.most_common(3)
    print("   players with the most transfer pairs:", busiest)

    # ------------------------------------------------------------------
    question2 = query_recast_character()
    print("\nQ2: actors who played the same character across seasons")
    count2 = engine.count(question2)
    print(f"   {count2} embeddings (the paper reports 76 on real JF17K)")
    for embedding in list(engine.match(question2))[:3]:
        binding = next(embedding.vertex_mappings())
        character, show = binding[0], binding[1]
        actor_a, season_a = binding[2], binding[3]
        actor_b, season_b = binding[4], binding[5]
        print(
            f"     character#{character} on show#{show}: "
            f"actor#{actor_a} (season#{season_a}) -> "
            f"actor#{actor_b} (season#{season_b})"
        )


if __name__ == "__main__":
    main()
