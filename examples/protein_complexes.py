"""Mining protein-complex patterns in a biological hypergraph.

The paper's first motivating application: protein interaction networks
where proteins are vertices (labelled with a functional family) and
protein complexes are hyperedges.  Biologists express a complex motif of
interest as a query hypergraph and search for it in the full network.

This example synthesises such a network, plants a known motif — a
kinase/scaffold/phosphatase "signalling triangle" spanning two
overlapping complexes — and recovers every occurrence with HGMatch,
comparing against the extended CFL-H baseline for both counts and time.

Run with:  python examples/protein_complexes.py
"""

from __future__ import annotations

import random
import time

from repro import HGMatch, Hypergraph
from repro.baselines import CFLHMatcher
from repro.hypergraph.generators import generate_hypergraph, generate_planted_hypergraph

KINASE, SCAFFOLD, PHOSPHATASE, SUBSTRATE = "K", "S", "P", "U"


def build_network(rng: random.Random) -> Hypergraph:
    """A protein network: background complexes + planted motifs."""
    background = generate_hypergraph(
        num_vertices=400,
        num_edges=300,
        num_labels=4,
        mean_arity=4.0,
        max_arity=8,
        rng=rng,
    )
    # Re-label the integer alphabet onto protein families.
    families = [KINASE, SCAFFOLD, PHOSPHATASE, SUBSTRATE]
    relabelled = Hypergraph(
        [families[label % 4] for label in background.labels],
        [sorted(edge) for edge in background.edges],
    )
    return generate_planted_hypergraph(relabelled, signalling_motif(), 12, rng)


def signalling_motif() -> Hypergraph:
    """Two overlapping complexes sharing a scaffold protein:
    {kinase, scaffold, substrate} and {scaffold, phosphatase}."""
    return Hypergraph(
        labels=[KINASE, SCAFFOLD, SUBSTRATE, PHOSPHATASE],
        edges=[{0, 1, 2}, {1, 3}],
    )


def main() -> None:
    rng = random.Random(2023)
    network = build_network(rng)
    motif = signalling_motif()
    print("Protein network:", network)
    print("Query motif:", motif, "(two complexes sharing a scaffold)")

    engine = HGMatch(network)
    started = time.perf_counter()
    matches = list(engine.match(motif))
    hgmatch_time = time.perf_counter() - started
    print(f"\nHGMatch found {len(matches)} occurrences "
          f"in {hgmatch_time * 1000:.1f} ms (>= 12 were planted)")

    sample = matches[0]
    binding = next(sample.vertex_mappings())
    print("One occurrence:",
          {motif.label(u): f"protein#{v}" for u, v in sorted(binding.items())})

    baseline = CFLHMatcher(network)
    started = time.perf_counter()
    baseline_tuples = baseline.hyperedge_embeddings(motif)
    baseline_time = time.perf_counter() - started
    print(f"\nCFL-H (extended baseline) found {len(baseline_tuples)} "
          f"occurrences in {baseline_time * 1000:.1f} ms")
    assert baseline_tuples == {m.canonical() for m in matches}
    if hgmatch_time > 0:
        print(f"HGMatch speedup over CFL-H: {baseline_time / hgmatch_time:.1f}x")


if __name__ == "__main__":
    main()
