"""Quickstart: the paper's Fig. 1 example, end to end.

Builds the running-example data hypergraph and query from the paper,
shows the execution plan HGMatch generates, enumerates the two
embeddings, and expands one of them into explicit vertex bindings.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import HGMatch, Hypergraph


def main() -> None:
    # Fig. 1b — vertices v0..v6 labelled A C A A B C A; six hyperedges.
    data = Hypergraph(
        labels=["A", "C", "A", "A", "B", "C", "A"],
        edges=[
            {2, 4},          # e1 in the paper (ids here are 0-based)
            {4, 6},          # e2
            {0, 1, 2},       # e3
            {3, 5, 6},       # e4
            {0, 1, 4, 6},    # e5
            {2, 3, 4, 5},    # e6
        ],
    )

    # Fig. 1a — query u0..u4 labelled A C A A B with three hyperedges.
    query = Hypergraph(
        labels=["A", "C", "A", "A", "B"],
        edges=[{2, 4}, {0, 1, 2}, {0, 1, 3, 4}],
    )

    # Offline stage: signature partitioning + inverted hyperedge index.
    engine = HGMatch(data)
    print("Data:", data)
    print("Query:", query)

    # Online stage: plan generation (Algorithm 3) ...
    plan = engine.plan(query)
    print("\nExecution plan:")
    print(plan.describe())

    # ... and enumeration (Algorithms 2/4/5).
    print("\nEmbeddings:")
    for embedding in engine.match(query):
        mapping = embedding.hyperedge_mapping()
        pretty = {
            f"query edge {q}": f"data edge {d}" for q, d in sorted(mapping.items())
        }
        print(" ", pretty)

    print("\nTotal:", engine.count(query), "embeddings (the paper finds 2)")

    # Hyperedge-level embeddings expand to explicit vertex bindings.
    first = next(iter(engine.match(query)))
    vertex_mapping = next(first.vertex_mappings())
    print("\nOne vertex mapping (query vertex -> data vertex):")
    print(" ", dict(sorted(vertex_mapping.items())))

    # Parallel execution gives identical results.
    print("\nParallel count (4 workers):", engine.count(query, workers=4))


if __name__ == "__main__":
    main()
